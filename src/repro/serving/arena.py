"""A shared-memory sample arena: the zero-copy serving data plane.

The multi-process :class:`~repro.serving.service.DetectionService`
previously shipped every request's full float64 sample array through a
pickling ``mp.Queue`` — at 16 kHz a 5-second clip is ~640 KB serialized
per dispatch, per retry.  :class:`ShmArena` removes that copy chain: the
dispatcher writes each clip's samples **once** into a
``multiprocessing.shared_memory`` slab and passes only a tiny
:class:`SlotRef` descriptor ``(slot, offset, shape, dtype, generation)``
through the task queue; forked workers map the same physical pages and
read the samples as a read-only numpy view without any deserialization.

Design notes:

* **Fork-inherited, parent-owned.**  The arena is created in the parent
  *before* the worker pool forks, so every worker (including respawned
  ones, which are forked from the same parent) inherits the mapping for
  free — no ``SharedMemory(name=...)`` attach, no resource-tracker
  double-unlink hazards.  Only the owning process allocates and frees;
  workers are strictly readers.
* **Slot table + free-extent allocator.**  The slab starts with a
  header of per-slot generation counters (one ``uint64`` per slot,
  visible to every process through the shared mapping) followed by the
  data region, managed by a first-fit free-extent allocator with
  coalescing on free.  ``alloc`` is ``None`` when no extent fits — the
  caller falls back to the pickle payload for that dispatch instead of
  blocking.
* **Generation tags.**  Every allocation bumps the slot's generation in
  the shared header and stamps the same value into the descriptor;
  ``free`` bumps it again.  A reader validates the descriptor's
  generation against the live header before building a view, so a stale
  descriptor (its slot reclaimed and reused after a crash or timeout)
  raises :class:`StaleSlot` instead of silently reading foreign bytes.
* **Crash-safe reclamation.**  Descriptors of a dead worker's in-flight
  requests stay valid (the parent wrote the bytes; the worker never
  mutates them), so a crash retry re-dispatches the *same* descriptor
  with zero extra copies.  Slots are freed exactly when their request
  resolves, and :meth:`destroy` frees the whole segment — the service
  calls it unconditionally on ``stop()``, so no ``/dev/shm`` segment
  outlives the service even after SIGKILL'd workers.

Besides the request/response data plane, the arena doubles as a
content-interned sample store for batch pipelines:
:meth:`intern`/:meth:`find` keep one resident copy of a hot clip keyed
by content hash — :class:`~repro.pipeline.engine.TranscriptionEngine`
adopts batch inputs through it (opt in via ``REPRO_SAMPLE_ARENA``), so
the experiment runner's fork pool shares one slab of shard inputs
instead of per-process copies.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from dataclasses import dataclass

import numpy as np

#: Prefix of every arena's ``/dev/shm`` segment name; the leak tests
#: (and operators) can find stray segments by it.
SEGMENT_PREFIX = "repro-arena-"

#: Rough size of one pickled SlotRef task payload, used for IPC-byte
#: accounting (the exact pickle is ~180 bytes; what matters is that it
#: is constant and tiny next to the samples it replaces).
DESCRIPTOR_NBYTES = 192


class ArenaError(RuntimeError):
    """The arena cannot satisfy a request (corrupt ref, closed arena)."""


class StaleSlot(ArenaError):
    """A descriptor's slot was reclaimed: its generation is no longer live."""


@dataclass(frozen=True)
class SlotRef:
    """A descriptor of one allocation inside a :class:`ShmArena`.

    This is everything that crosses the process boundary for a clip's
    samples: which slot, where its bytes live, how to view them, and the
    generation stamp that proves the slot still holds those bytes.
    """

    slot: int
    offset: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: str
    generation: int


@dataclass(frozen=True)
class ShmClip:
    """A :class:`~repro.audio.waveform.Waveform` with arena-resident samples.

    The samples travel as a :class:`SlotRef`; the (small) text, label and
    metadata fields travel by value.  ``restore_waveform`` rebuilds the
    waveform around a zero-copy read-only view.
    """

    ref: SlotRef
    sample_rate: int
    text: str = ""
    label: str = "benign"
    metadata: dict | None = None


class ShmArena:
    """A slab/ring allocator over one shared-memory segment.

    Args:
        capacity_bytes: size of the data region.
        slots: size of the slot table (the maximum number of live
            allocations).  Defaults to one slot per 64 KB of capacity,
            at least 64.
        name: explicit segment name (a ``SEGMENT_PREFIX`` name is
            generated when omitted).
    """

    def __init__(self, capacity_bytes: int, slots: int | None = None,
                 name: str | None = None):
        from multiprocessing import shared_memory

        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        if slots is None:
            slots = max(64, capacity_bytes // 65536)
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if name is None:
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        self.capacity_bytes = int(capacity_bytes)
        self.n_slots = int(slots)
        self._header_bytes = 8 * self.n_slots
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=self._header_bytes + capacity_bytes)
        self.name = self._shm.name
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        #: Per-slot generation counters, shared with every forked reader.
        self._generations = np.ndarray(
            (self.n_slots,), dtype=np.uint64, buffer=self._shm.buf)
        self._generations[:] = 0
        #: Free extents of the data region as sorted (offset, size) pairs.
        self._free_extents: list[tuple[int, int]] = [(0, self.capacity_bytes)]
        self._free_slots: list[int] = list(range(self.n_slots - 1, -1, -1))
        #: Live allocations: slot -> (offset, size) (owner-side only).
        self._live: dict[int, tuple[int, int]] = {}
        #: Content-interned refs (see :meth:`intern`): key -> SlotRef.
        self._interned: dict[str, SlotRef] = {}
        self._destroyed = False
        # Belt and braces: if the owner forgets destroy(), unlink at GC
        # time rather than leaking the segment until reboot.
        self._finalizer = weakref.finalize(
            self, ShmArena._cleanup, self._shm, self._owner_pid)

    @staticmethod
    def _cleanup(shm, owner_pid: int) -> None:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        if os.getpid() == owner_pid:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    # --------------------------------------------------------------- queries
    @property
    def is_owner(self) -> bool:
        """Whether this process may allocate/free (it created the arena)."""
        return os.getpid() == self._owner_pid

    @property
    def live_slots(self) -> int:
        """Number of live allocations (owner-side view)."""
        return len(self._live)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of live allocations (owner-side view)."""
        return sum(size for _, size in self._live.values())

    @property
    def free_bytes(self) -> int:
        """Total bytes of free extents (may be fragmented)."""
        return sum(size for _, size in self._free_extents)

    # ---------------------------------------------------------- alloc / free
    def alloc(self, nbytes: int, shape: tuple[int, ...],
              dtype: str) -> SlotRef | None:
        """Reserve ``nbytes``; ``None`` when no slot or extent fits."""
        if self._destroyed or not self.is_owner:
            return None
        nbytes = max(1, int(nbytes))
        with self._lock:
            if not self._free_slots:
                return None
            for index, (offset, size) in enumerate(self._free_extents):
                if size >= nbytes:
                    break
            else:
                return None
            if size == nbytes:
                del self._free_extents[index]
            else:
                self._free_extents[index] = (offset + nbytes, size - nbytes)
            slot = self._free_slots.pop()
            generation = int(self._generations[slot]) + 1
            self._generations[slot] = generation
            self._live[slot] = (offset, nbytes)
        return SlotRef(slot=slot, offset=offset, nbytes=nbytes,
                       shape=tuple(int(n) for n in shape), dtype=str(dtype),
                       generation=generation)

    def write(self, array: np.ndarray) -> SlotRef | None:
        """Copy ``array`` into the arena once; ``None`` when it does not fit."""
        array = np.ascontiguousarray(array)
        ref = self.alloc(array.nbytes, array.shape, array.dtype.str)
        if ref is None:
            return None
        if array.nbytes:
            start = self._header_bytes + ref.offset
            destination = np.ndarray(array.shape, dtype=array.dtype,
                                     buffer=self._shm.buf, offset=start)
            np.copyto(destination, array)
        return ref

    def free(self, ref: SlotRef) -> bool:
        """Release ``ref``'s slot; stale/double frees are ignored.

        Returns ``True`` when the slot was actually reclaimed.  Bumping
        the shared generation counter here is what invalidates any
        descriptor still floating through a queue.
        """
        if self._destroyed or not self.is_owner:
            return False
        with self._lock:
            if int(self._generations[ref.slot]) != ref.generation:
                return False  # already freed (or never this allocation)
            extent = self._live.pop(ref.slot, None)
            if extent is None:  # pragma: no cover - defensive
                return False
            self._generations[ref.slot] = ref.generation + 1
            self._free_slots.append(ref.slot)
            self._insert_extent(extent)
        return True

    def _insert_extent(self, extent: tuple[int, int]) -> None:
        """Insert a freed extent, coalescing with its neighbours."""
        offset, size = extent
        extents = self._free_extents
        lo, hi = 0, len(extents)
        while lo < hi:
            mid = (lo + hi) // 2
            if extents[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        extents.insert(lo, (offset, size))
        # Coalesce with the next extent, then the previous one.
        if lo + 1 < len(extents) and offset + size == extents[lo + 1][0]:
            extents[lo] = (offset, size + extents[lo + 1][1])
            del extents[lo + 1]
        if lo > 0 and extents[lo - 1][0] + extents[lo - 1][1] == offset:
            extents[lo - 1] = (extents[lo - 1][0],
                               extents[lo - 1][1] + extents[lo][1])
            del extents[lo]

    # ------------------------------------------------------------- reading
    def view(self, ref: SlotRef) -> np.ndarray:
        """A zero-copy read-only view of ``ref``'s bytes.

        Raises :class:`StaleSlot` when the slot's live generation no
        longer matches the descriptor — the allocation was reclaimed.
        """
        if self._destroyed:
            raise ArenaError("arena is destroyed")
        if not (0 <= ref.slot < self.n_slots):
            raise ArenaError(f"slot {ref.slot} out of range")
        if int(self._generations[ref.slot]) != ref.generation:
            raise StaleSlot(
                f"slot {ref.slot} generation {ref.generation} was reclaimed")
        if ref.offset < 0 or ref.offset + ref.nbytes > self.capacity_bytes:
            raise ArenaError(f"extent {ref.offset}+{ref.nbytes} out of range")
        start = self._header_bytes + ref.offset
        array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                           buffer=self._shm.buf, offset=start)
        array.flags.writeable = False
        return array

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array``'s memory lives inside this arena's segment."""
        if self._destroyed:
            return False
        try:
            address = array.__array_interface__["data"][0]
        except (AttributeError, KeyError, TypeError):
            return False  # pragma: no cover - exotic arrays
        start = _buffer_address(self._shm.buf)
        return start <= address < start + len(self._shm.buf)

    # ------------------------------------------------------------ interning
    def intern(self, key: str, array: np.ndarray) -> np.ndarray | None:
        """One resident copy of ``array`` under ``key`` (owner only).

        Returns the arena-backed read-only view, or ``None`` when the
        arena is full or this process is a fork child (children read
        entries interned before the fork through :meth:`find`, but never
        allocate — the allocator state is owner-private).  Interned
        entries are never reclaimed; the slab is the budget.

        Lookups never take the allocator lock, so a fork child that
        inherited the lock mid-acquire can still read safely.
        """
        ref = self._interned.get(key)
        if ref is not None:
            return self.view(ref)
        if not self.is_owner:
            return None
        ref = self.write(array)
        if ref is None:
            return None
        with self._lock:
            self._interned[key] = ref
        return self.view(ref)

    def find(self, key: str) -> np.ndarray | None:
        """The interned view under ``key``, or ``None``.

        Works in fork children for entries interned before the fork:
        the table forks by value and the bytes live in shared pages.
        """
        ref = self._interned.get(key)
        if ref is None:
            return None
        try:
            return self.view(ref)
        except ArenaError:  # pragma: no cover - defensive
            return None

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Detach this process's mapping (readers call this, never unlink)."""
        if not self._destroyed:
            self._destroyed = True
            self._generations = None
            self._finalizer.detach()
            try:
                self._shm.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass

    def destroy(self) -> None:
        """Unlink the segment (idempotent; owner only).

        After this no process can map the segment again; existing
        mappings die with their processes.  The service calls this
        unconditionally on ``stop()`` so ``/dev/shm`` never accumulates
        arena segments, whatever happened to the workers.
        """
        if self._destroyed:
            return
        is_owner = self.is_owner
        self.close()
        if is_owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


def _buffer_address(buf) -> int:
    """Start address of a writable memoryview's buffer."""
    import ctypes

    return ctypes.addressof(ctypes.c_char.from_buffer(buf))


# ------------------------------------------------------------- waveform glue
def share_waveform(arena: ShmArena, audio) -> ShmClip | None:
    """Write ``audio``'s samples into ``arena``; ``None`` when it won't fit."""
    ref = arena.write(audio.samples)
    if ref is None:
        return None
    return ShmClip(ref=ref, sample_rate=audio.sample_rate, text=audio.text,
                   label=audio.label,
                   metadata=dict(audio.metadata) if audio.metadata else None)


def restore_waveform(arena: ShmArena, clip: ShmClip):
    """Rebuild the :class:`Waveform` around a zero-copy arena view.

    Raises :class:`StaleSlot` when the descriptor's slot was reclaimed
    (the caller converts that into a typed error instead of reading
    foreign bytes).
    """
    from repro.audio.waveform import Waveform

    samples = arena.view(clip.ref)
    return Waveform(samples=samples, sample_rate=clip.sample_rate,
                    text=clip.text, label=clip.label,
                    metadata=dict(clip.metadata) if clip.metadata else {})


def list_arena_segments() -> list[str]:
    """Names of live ``/dev/shm`` arena segments (the leak harness's probe)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in os.listdir(shm_dir)
                  if name.startswith(SEGMENT_PREFIX))
