"""The serving layer: streaming detection and micro-batched scheduling.

This package turns the batched :mod:`repro.pipeline` execution layer
into a runtime guard that matches the paper's deployment story (a
detector sitting on the serving path of a voice assistant, Section V-I):

* :mod:`repro.serving.chunker` — :class:`StreamConfig` and the window
  slicer cutting long/continuous audio into overlapping detection
  windows.
* :mod:`repro.serving.aggregator` — per-window verdicts folded into a
  stream-level verdict with hysteresis; flagged time spans.
* :mod:`repro.serving.streaming` — :class:`StreamingDetector` (one-shot
  ``detect_stream`` and incremental :class:`StreamSession`).
* :mod:`repro.serving.batcher` — :class:`MicroBatcher`, the async
  micro-batching scheduler for concurrent single-clip requests.
* :mod:`repro.serving.metrics` — :class:`ServingMetrics`, per-stage
  throughput/latency counters surfaced by ``repro bench``.
* :mod:`repro.serving.arena` — :class:`ShmArena`, the shared-memory
  slab the service's zero-copy ``"shm"`` transport writes audio into
  (generation-tagged slots, crash-safe reclamation).
* :mod:`repro.serving.service` — :class:`DetectionService`, the
  multi-tenant multi-process front door (admission control, deadlines,
  crash recovery, shared caches) behind ``repro serve``.

See ``docs/SERVING.md`` for the full tour and ``docs/API.md`` for the
stable public surface.
"""

from repro.serving.arena import (
    ArenaError,
    ShmArena,
    ShmClip,
    SlotRef,
    StaleSlot,
    list_arena_segments,
)
from repro.serving.aggregator import (
    ADVERSARIAL,
    BENIGN,
    FlaggedSpan,
    StreamAggregator,
    StreamDetectionResult,
    WindowVerdict,
)
from repro.serving.batcher import BatcherStats, MicroBatcher
from repro.serving.chunker import (
    StreamConfig,
    StreamWindow,
    chunk_waveform,
    iter_windows,
)
from repro.serving.metrics import ServingMetrics, StageStats
from repro.serving.service import (
    DetectionService,
    ServeResult,
    ServiceStats,
    load_manifest,
)
from repro.serving.streaming import StreamingDetector, StreamSession

__all__ = [
    "ArenaError",
    "ShmArena",
    "ShmClip",
    "SlotRef",
    "StaleSlot",
    "list_arena_segments",
    "ADVERSARIAL",
    "BENIGN",
    "FlaggedSpan",
    "StreamAggregator",
    "StreamDetectionResult",
    "WindowVerdict",
    "BatcherStats",
    "MicroBatcher",
    "StreamConfig",
    "StreamWindow",
    "chunk_waveform",
    "iter_windows",
    "ServingMetrics",
    "StageStats",
    "DetectionService",
    "ServeResult",
    "ServiceStats",
    "load_manifest",
    "StreamingDetector",
    "StreamSession",
]
