"""Shared error types for the component registries.

Every pluggable surface of the library — ASR systems, classifiers,
similarity methods, scoring backends, cache policies, defense modes —
resolves string names through a registry.  Before this module each
registry raised its own mix of ``KeyError`` and ``ValueError``, so a
caller screening user input (the CLI, a config validator) had to know
which registry throws what.  :class:`UnknownComponentError` unifies
them: one exception type that always names the component *kind*, the
bad name, and the names that would have worked.

The class subclasses both ``ValueError`` (its primary identity — a bad
value was supplied) and ``KeyError`` (what several registries raised
historically), so existing ``except KeyError`` call sites keep working.
"""

from __future__ import annotations

from typing import Iterable


class UnknownComponentError(ValueError, KeyError):
    """A registry lookup failed: no component of this kind has that name.

    Attributes:
        kind: what was being looked up (``"ASR system"``,
            ``"classifier"``, ``"similarity method"``, ...).
        name: the name that failed to resolve.
        available: the names that would have resolved, sorted.
    """

    def __init__(self, kind: str, name: object, available: Iterable[str]):
        self.kind = kind
        self.name = name
        self.available = tuple(sorted(available))
        super().__init__(
            f"unknown {kind} {name!r}; available: {list(self.available)}")

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message (quoting it); report
        # the plain sentence instead.
        return self.args[0]


class BackendUnavailableError(UnknownComponentError):
    """A name resolved to a registered backend whose optional
    dependencies are not installed.

    Distinct from the generic unknown-name failure: the name *is*
    registered (see :mod:`repro.backends.registry`), so the message says
    which third-party modules are missing and how to install them
    instead of listing the registry.

    Attributes:
        missing: the importable module names that could not be found.
        install_hint: the command that makes the backend available
            (e.g. ``pip install repro[backends]``).
    """

    def __init__(self, kind: str, name: object, missing: Iterable[str],
                 install_hint: str):
        super().__init__(kind, name, ())
        self.missing = tuple(missing)
        self.install_hint = install_hint
        self.args = (
            f"{kind} {name!r} is registered but unavailable: missing "
            f"optional dependenc{'ies' if len(self.missing) != 1 else 'y'} "
            f"{list(self.missing)}; install with: {install_hint}",)
