"""One entry point from spec to running system: ``repro.build(spec)``.

Where :mod:`repro.specs` describes a detection system as data, this
module turns that data into objects: a fitted
:class:`~repro.core.detector.MVPEarsDetector` (:func:`build`), a batched
:class:`~repro.pipeline.detection.DetectionPipeline`
(:func:`build_pipeline`), a
:class:`~repro.serving.streaming.StreamingDetector`
(:func:`build_streaming`) or a micro-batching server
(:func:`build_batcher`).  Every constructor accepts a
:class:`~repro.specs.DetectorSpec`, a plain dict, or a path to a JSON
config file, and validates the spec before touching any heavy machinery
— a typo fails with the field name and the allowed values, not a stack
trace from deep inside the suite build.

Construction is faithful to the legacy ``default_detector`` paths: a
spec produced by :meth:`DetectorSpec.default` builds the *same* system
(same suite order, same training data, same classifier configuration),
so spec-built and kwarg-built detectors are score-identical — pinned by
``tests/test_specs.py``.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.asr.base import ASRSystem
from repro.asr.registry import build_asr
from repro.core.detector import MVPEarsDetector
from repro.pipeline.engine import resolve_transcription_cache
from repro.similarity.engine import SimilarityEngine, resolve_score_cache
from repro.specs import ASRSpec, DetectorSpec, InvalidSpecError


def resolve_spec(spec: DetectorSpec | Mapping | str | None) -> DetectorSpec:
    """Coerce ``spec`` into a validated :class:`DetectorSpec`.

    Accepts a spec instance, a plain dict (``DetectorSpec.from_dict``),
    a path to a JSON file (``DetectorSpec.load`` — includes the
    environment overlay), or ``None`` for the default system.
    """
    if spec is None:
        spec = DetectorSpec.default()
    elif isinstance(spec, (str, os.PathLike)):
        spec = DetectorSpec.load(os.fspath(spec))
    elif isinstance(spec, Mapping):
        spec = DetectorSpec.from_dict(spec)
    elif not isinstance(spec, DetectorSpec):
        raise TypeError(
            f"expected a DetectorSpec, dict or config path, got {spec!r}")
    return spec.validate()


def _resolve_member(member: ASRSpec) -> ASRSystem:
    base = build_asr(member.name)
    if member.transform is None:
        return base
    from repro.defenses.ensemble import TransformedASR
    return TransformedASR(base, member.transform.build())


def build_suite(suite) -> tuple[ASRSystem, list[ASRSystem]]:
    """Resolve a :class:`~repro.specs.SuiteSpec` into ASR instances.

    Returns ``(target, auxiliaries)`` in suite order; transformed
    members come back as :class:`TransformedASR` views.
    """
    return (_resolve_member(suite.target),
            [_resolve_member(member) for member in suite.auxiliaries])


def is_canonical_ensemble(suite) -> bool:
    """Whether a suite has the transform-ensemble shape.

    Canonical: plain auxiliaries followed by at least one transformed
    view *of the target* — the shape
    ``DetectorSpec.default(defense="transform"|"combined")`` produces.
    :func:`build` maps exactly these suites to a
    :class:`~repro.defenses.ensemble.TransformEnsembleDetector` (and
    ``TransformEnsembleDetector.from_spec`` refuses everything else).
    """
    members = tuple(suite.auxiliaries)
    plain = tuple(m for m in members if m.transform is None)
    tail = members[len(plain):]
    return (bool(tail) and members[:len(plain)] == plain
            and all(m.transform is not None and m.name == suite.target.name
                    for m in tail))


def default_spec_with_transforms(transforms, **spec_kwargs):
    """``DetectorSpec.default`` tolerating instance transforms.

    Returns ``(spec, overrides)``: when every transform has a compact
    spec representation the overrides are empty; otherwise (a custom
    ``Transform`` subclass, a seeded ``NoiseFlood``) the instances ride
    along as a :func:`build` ``overrides`` dict instead.  Shared by the
    legacy ``default_detector`` shim and the experiment runners.
    """
    if transforms is None or isinstance(transforms, str):
        return DetectorSpec.default(**spec_kwargs, transforms=transforms), {}
    transforms = list(transforms)          # a generator must survive a retry
    try:
        return DetectorSpec.default(**spec_kwargs, transforms=transforms), {}
    except ValueError:
        return (DetectorSpec.default(**spec_kwargs),
                {"transforms": transforms})


def build_feature_engine(features_spec):
    """Resolve a :class:`~repro.specs.FeaturesSpec` into a feature engine.

    ``backend="off"`` returns ``None`` — the transcription engine then
    leaves every ASR to run its own front end from raw samples (the
    fully paper-faithful per-clip path).
    """
    if features_spec.backend == "off":
        return None
    from repro.dsp.engine import FeatureEngine, resolve_feature_cache
    return FeatureEngine(backend=features_spec.backend,
                         cache=resolve_feature_cache(features_spec.cache))


def _training_source(spec: DetectorSpec) -> str:
    """Resolve ``training.source`` (``auto`` -> ``scored``/``bundle``).

    The pre-computed scored dataset covers exactly the paper's
    plain-ASR systems — its target and columns are the import-time
    snapshot in :mod:`repro.datasets.scores` (what the cached artefacts
    actually hold), not the live registry, so a ``default_suite=True``
    plugin never fools ``auto`` into picking a dataset without its
    column.  Anything uncovered trains from the audio bundle.
    """
    source = spec.training.source
    if source != "auto":
        return source
    from repro.datasets.scores import AUXILIARY_ORDER, SCORED_TARGET
    covered = (spec.suite.target.transform is None
               and spec.suite.target.name == SCORED_TARGET
               and all(aux.transform is None and aux.name in AUXILIARY_ORDER
                       for aux in spec.suite.auxiliaries))
    return "scored" if covered else "bundle"


def build(spec: DetectorSpec | Mapping | str | None = None, *,
          fit: bool = True,
          overrides: Mapping[str, Any] | None = None) -> MVPEarsDetector:
    """Build (and by default fit) the detection system a spec describes.

    Args:
        spec: a :class:`DetectorSpec`, a plain dict, a JSON config path,
            or ``None`` for the paper's default system.
        fit: train the classifier per ``spec.training`` (pass ``False``
            for an unfitted detector to train yourself).
        overrides: escape hatch for non-serialisable components, used by
            the legacy ``default_detector`` shim.  Recognised keys:
            ``"transforms"`` (built ``Transform`` instances replacing
            the suite's transformed-target views), ``"cache"`` (a
            :class:`TranscriptionCache` instance), ``"score_cache"`` (a
            :class:`PairScoreCache` instance), ``"scorer"`` (a
            :class:`SimilarityScorer` instance), ``"feature_engine"`` (a
            :class:`~repro.dsp.engine.FeatureEngine` or ``None``).

    Returns:
        An :class:`~repro.core.detector.MVPEarsDetector`; a
        :class:`~repro.defenses.ensemble.TransformEnsembleDetector` when
        the suite's tail is transformed views of the target (the shape
        :meth:`DetectorSpec.default` produces for the transform-based
        defenses), so legacy call sites keep their return type.
    """
    spec = resolve_spec(spec)
    overrides = dict(overrides or {})

    scoring = SimilarityEngine(
        scorer=overrides.get("scorer", spec.scoring.scorer),
        backend=spec.scoring.backend,
        cache=resolve_score_cache(overrides.get("score_cache",
                                                spec.scoring.cache)))
    cache = resolve_transcription_cache(overrides.get("cache",
                                                      spec.pipeline.cache))
    feature_engine = overrides.get("feature_engine",
                                   build_feature_engine(spec.pipeline.features))
    target = _resolve_member(spec.suite.target)

    members = list(spec.suite.auxiliaries)
    if "transforms" in overrides:
        # Instance transforms replace the spec's transformed-target views
        # (legacy `transforms=[Transform, ...]` support); plain members
        # keep their order.
        members = [m for m in members
                   if not (m.transform is not None
                           and m.name == spec.suite.target.name)]
        transform_objects = list(overrides["transforms"])
        canonical = (bool(transform_objects)
                     and all(m.transform is None for m in members))
        if not canonical:
            # Refuse rather than silently drop the override instances:
            # transform overrides only compose with the canonical
            # ensemble shape (plain members + transformed-target views).
            raise InvalidSpecError(
                ["overrides['transforms']: the suite keeps transformed "
                 "views of non-target members, so instance transforms "
                 "cannot replace its ensemble; express the transforms in "
                 "the spec instead"])
    else:
        transform_objects = [m.transform.build() for m in members
                             if m.transform is not None
                             and m.name == spec.suite.target.name]
        canonical = is_canonical_ensemble(spec.suite)

    # A canonical ensemble shape builds a TransformEnsembleDetector so
    # the transform-aware surface (fit_bundle, transform_names) stays
    # available; any other mix (e.g. a transformed view of a non-target
    # member) builds a generic suite with every member resolved in spec
    # order.
    plain_prefix = [m for m in members if m.transform is None]
    common = dict(classifier=spec.classifier.name,
                  workers=spec.pipeline.workers, cache=cache, scoring=scoring,
                  feature_engine=feature_engine)
    if canonical:
        from repro.defenses.ensemble import TransformEnsembleDetector
        detector: MVPEarsDetector = TransformEnsembleDetector(
            target, transforms=transform_objects,
            asr_auxiliaries=[_resolve_member(m) for m in plain_prefix],
            **common)
    else:
        detector = MVPEarsDetector(
            target, [_resolve_member(m) for m in members], **common)

    if not fit:
        return detector
    return _fit(detector, spec, scoring)


def _fit(detector: MVPEarsDetector, spec: DetectorSpec,
         scoring: SimilarityEngine) -> MVPEarsDetector:
    import numpy as np

    source = _training_source(spec)
    if source == "scored":
        from repro.datasets.scores import (
            AUXILIARY_ORDER,
            SCORED_TARGET,
            load_scored_dataset,
        )
        aux_names = tuple(aux.name for aux in spec.suite.auxiliaries)
        uncovered = [aux.name for aux in spec.suite.auxiliaries
                     if aux.transform is not None
                     or aux.name not in AUXILIARY_ORDER]
        if (spec.suite.target.transform is not None
                or spec.suite.target.name != SCORED_TARGET):
            raise InvalidSpecError(
                [f"training.source: 'scored' is computed against the "
                 f"{SCORED_TARGET!r} target; this suite targets "
                 f"{spec.suite.target.name!r} (use source 'bundle' or "
                 f"'auto')"])
        if uncovered:
            raise InvalidSpecError(
                [f"training.source: 'scored' only covers plain auxiliaries "
                 f"from {list(AUXILIARY_ORDER)}; not covered: {uncovered} "
                 f"(use source 'bundle' or 'auto')"])
        dataset = load_scored_dataset(spec.training.scale,
                                      seed=spec.training.seed)
        features, labels = dataset.features_for(
            aux_names, method=scoring.scorer.name, scoring=scoring)
        return detector.fit_features(features, labels)
    from repro.datasets.builder import load_standard_bundle
    bundle = load_standard_bundle(spec.training.scale, spec.training.seed)
    samples = bundle.all_samples
    audios = [sample.waveform for sample in samples]
    labels = np.array([sample.label for sample in samples], dtype=int)
    return detector.fit(audios, labels)


def build_pipeline(spec: DetectorSpec | Mapping | str | None = None,
                   detector: MVPEarsDetector | None = None,
                   observer=None):
    """A batched :class:`DetectionPipeline` over a (spec-built) detector."""
    from repro.pipeline.detection import DetectionPipeline
    if detector is None:
        detector = build(spec)
    return DetectionPipeline(detector, observer=observer)


def build_streaming(spec: DetectorSpec | Mapping | str | None = None,
                    detector: MVPEarsDetector | None = None):
    """A :class:`StreamingDetector` configured from ``spec.serving``."""
    from repro.serving.streaming import StreamingDetector
    return StreamingDetector.from_spec(resolve_spec(spec), detector=detector)


def build_service(manifest: Mapping | str | None = None, *,
                  fit: bool = True, start: bool = False):
    """A :class:`~repro.serving.service.DetectionService` from a manifest.

    ``manifest`` is a tenant manifest (dict or JSON path with a
    ``"tenants"`` key) or anything :func:`resolve_spec` accepts, which
    becomes a single-tenant service named ``"default"``.  Pass
    ``start=True`` to fork the worker pool immediately; otherwise call
    ``start()`` (or use the service as a context manager) yourself.
    """
    from repro.serving.service import DetectionService
    service = DetectionService.from_manifest(manifest, fit=fit)
    return service.start() if start else service


def build_batcher(spec: DetectorSpec | Mapping | str | None = None,
                  pipeline=None, metrics=None):
    """A :class:`MicroBatcher` configured from ``spec.serving``.

    The batcher starts its scheduler thread on first submit; use it as a
    context manager (or call ``close()``) like a directly-built one.
    """
    from repro.serving.batcher import MicroBatcher
    spec = resolve_spec(spec)
    if pipeline is None:
        pipeline = build_pipeline(spec)
    return MicroBatcher.from_spec(spec, pipeline, metrics=metrics)
