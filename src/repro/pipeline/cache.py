"""Content-addressed transcription caching.

Transcribing a clip is by far the most expensive operation in the
library, and the same waveforms are transcribed again and again: every
experiment table re-reads the same dataset bundle, the overhead benchmark
replays clips the scored dataset already saw, and a deployed detector
screens repeated audio (replayed commands, re-submitted uploads).

The cache key is a content hash of the raw samples plus the sample rate
and the ASR's identity (``name`` and ``short_name``), so two
:class:`~repro.audio.waveform.Waveform` instances with identical audio
share one cache entry regardless of label or metadata.  Simulated ASRs
are deterministic — the same samples always decode to the same
transcription — which is what makes caching sound.  Caveat: two ASR
instances reporting the same ``name``/``short_name`` pair are assumed to
be the same system; custom variants with identical names but different
configuration must use distinct names or a private cache
(``cache=False`` / a dedicated :class:`TranscriptionCache`).

Storage is a thread-safe in-memory LRU, optionally backed by a store on
disk so repeated experiment *runs* (new processes) skip decoding too.
Two disk formats are supported, chosen by the path suffix:

* ``.json`` — a snapshot file, written atomically (temp file +
  ``os.replace``, see :mod:`repro.store`) by an explicit :meth:`save`;
* ``.jsonl`` — an append-only journal shared by concurrent *processes*:
  every :meth:`put` appends its entry immediately (write-through), and
  :meth:`refresh` merges entries other processes appended since the
  last look.  This is the store the multi-worker serving layer
  (:mod:`repro.serving.service`) points its workers at.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.asr.base import Transcription
from repro.audio.waveform import Waveform


def waveform_fingerprint(audio: Waveform) -> str:
    """Content hash identifying a waveform's audio (samples + rate)."""
    digest = hashlib.sha1()
    # Waveform guarantees C-contiguous float64 samples at ingest, so the
    # raw buffer is the canonical content — no per-lookup re-conversion.
    digest.update(audio.samples.tobytes())
    digest.update(str(int(audio.sample_rate)).encode("ascii"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`TranscriptionCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


def _transcription_to_json(result: Transcription) -> dict:
    payload = {
        "text": result.text,
        "phonemes": list(result.phonemes),
        "frame_labels": list(result.frame_labels),
        "asr_name": result.asr_name,
        "elapsed_seconds": result.elapsed_seconds,
    }
    try:
        json.dumps(result.extra)
        payload["extra"] = result.extra
    except (TypeError, ValueError):
        payload["extra"] = {}
    return payload


def _transcription_from_json(payload: dict) -> Transcription:
    return Transcription(
        text=payload["text"],
        phonemes=tuple(payload.get("phonemes", ())),
        frame_labels=tuple(payload.get("frame_labels", ())),
        asr_name=payload.get("asr_name", ""),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        extra=dict(payload.get("extra", {})),
    )


class TranscriptionCache:
    """Thread-safe LRU cache of transcriptions keyed by audio content.

    Args:
        capacity: maximum number of entries kept in memory; the least
            recently used entry is evicted first.
        path: optional on-disk store.  A ``.jsonl`` path is an
            append-only journal (write-through puts, concurrent-process
            safe, see the module docstring); any other path is a JSON
            snapshot file written by an explicit :meth:`save`.  Existing
            entries are loaded eagerly.
    """

    def __init__(self, capacity: int = 4096, path: str | None = None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.path = path
        self.stats = CacheStats()
        self._entries: OrderedDict[str, Transcription] = OrderedDict()
        self._lock = threading.Lock()
        self._journal = None
        if path is not None and _is_journal_path(path):
            from repro.store import Journal
            self._journal = Journal(path)
            self.refresh()
        elif path is not None and os.path.exists(path):
            self.load(path)

    @staticmethod
    def key_for(asr, audio: Waveform) -> str:
        """Cache key of one (ASR, waveform) pair.

        ``asr`` is an :class:`~repro.asr.base.ASRSystem`; its ``name``
        and ``short_name`` together identify the system (see the module
        docstring for the same-name caveat).
        """
        return f"{asr.short_name}|{asr.name}:{waveform_fingerprint(audio)}"

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Transcription | None:
        """Look up ``key``, updating LRU order and hit/miss statistics."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(self, key: str, result: Transcription) -> None:
        """Store ``result`` under ``key``, evicting the LRU entry if full.

        In journal mode the entry is also appended to the on-disk
        journal immediately (write-through), so other processes sharing
        the path see it on their next :meth:`refresh`.
        """
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        if self._journal is not None:
            self._journal.append({"k": key,
                                  "v": _transcription_to_json(result)})

    def refresh(self) -> int:
        """Merge journal entries other processes appended; returns count.

        Only meaningful in journal mode (``.jsonl`` path); a no-op that
        returns 0 otherwise.  Merged entries do not touch the hit/miss
        statistics.
        """
        if self._journal is None:
            return 0
        records = self._journal.replay()
        merged = 0
        with self._lock:
            for record in records:
                try:
                    entry = _transcription_from_json(record["v"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._entries[record["k"]] = entry
                self._entries.move_to_end(record["k"])
                merged += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return merged

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    # ------------------------------------------------------------ disk store
    def save(self, path: str | None = None) -> str:
        """Write the cache to ``path`` (default: the constructor path).

        Snapshot paths are written atomically (temp file +
        ``os.replace``), so a crash mid-save leaves the previous store
        intact.  Saving to the cache's own journal path compacts the
        journal to the current in-memory snapshot — a single-writer
        operation (see :meth:`repro.store.Journal.rewrite`).
        """
        from repro.store import Journal, atomic_write_text

        path = path or self.path
        if path is None:
            raise ValueError("no path given and cache has no backing file")
        with self._lock:
            payload = {key: _transcription_to_json(result)
                       for key, result in self._entries.items()}
        if _is_journal_path(path):
            journal = (self._journal
                       if self._journal is not None and path == self.path
                       else Journal(path))
            journal.rewrite({"k": key, "v": value}
                            for key, value in payload.items())
        else:
            atomic_write_text(path, json.dumps(payload))
        return path

    def load(self, path: str | None = None) -> int:
        """Merge entries from ``path`` into the cache; returns the count."""
        path = path or self.path
        if path is None:
            raise ValueError("no path given and cache has no backing file")
        if _is_journal_path(path):
            from repro.store import Journal
            payload = {record["k"]: record["v"]
                       for record in Journal(path).replay()
                       if "k" in record and "v" in record}
        else:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        with self._lock:
            for key, entry in payload.items():
                self._entries[key] = _transcription_from_json(entry)
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return len(payload)


def _is_journal_path(path: str) -> bool:
    """Whether a cache path selects the append-only journal format."""
    return os.fspath(path).endswith(".jsonl")
