"""Parallel transcription engine and batched detection pipeline.

This package is the execution layer of the reproduction: it turns the
paper's "all ASRs run in parallel" deployment assumption (Section V-I)
into working code.

* :mod:`repro.pipeline.cache` — a content-hash transcription cache
  (in-memory LRU plus an optional on-disk JSON store) so repeated clips
  and repeated experiment runs never re-decode audio.
* :mod:`repro.pipeline.engine` — :class:`TranscriptionEngine`, which fans
  one waveform (or a batch) out across the target + auxiliary ASR suite
  with a ``concurrent.futures`` worker pool.  ``workers=0`` selects the
  original sequential path so the paper's timing tables stay reproducible.
* :mod:`repro.pipeline.detection` — :class:`DetectionPipeline`, which
  batches feature extraction → scoring → classification and reports
  per-stage timing compatible with the paper's overhead experiment.
"""

from repro.pipeline.cache import CacheStats, TranscriptionCache, waveform_fingerprint
from repro.pipeline.engine import (
    SuiteTranscription,
    TranscriptionEngine,
    get_shared_cache,
    resolve_worker_count,
)
from repro.pipeline.detection import BatchDetectionResult, DetectionPipeline

__all__ = [
    "CacheStats",
    "TranscriptionCache",
    "waveform_fingerprint",
    "SuiteTranscription",
    "TranscriptionEngine",
    "get_shared_cache",
    "resolve_worker_count",
    "BatchDetectionResult",
    "DetectionPipeline",
]
