"""The end-to-end pipeline benchmark (``repro bench-pipeline``).

Times the seed library's per-clip recognition path against the
vectorized one on a synthetic clip batch, over the default ASR suite:

* **reference** — freshly built suite instances with the scalar decoder
  search, sequential fan-out (``workers=0``), no caches and no feature
  engine: the path the seed library ran.
* **cold** — freshly built suite instances on the fast path: vectorized
  decoder search, batched front end and acoustic scoring
  (:meth:`~repro.asr.base.ASRSystem.transcribe_batch` via the
  transcription engine), and a private
  :class:`~repro.dsp.feature_cache.FeatureCache` that starts empty.
* **warm** — the same fast engine run again, so every front-end matrix
  comes out of the feature cache (the recurring-audio shape streaming
  serves).

The report is machine-readable (written to ``BENCH_pipeline.json`` by
the CLI, uploaded as a CI artifact) and self-checking: it counts the
transcription mismatches between the reference and fast passes, which
must be exactly zero — both paths are required to be bit-identical, not
approximately equal.
"""

from __future__ import annotations

import time

import numpy as np

from repro.asr.registry import (
    build_fresh_asr,
    default_suite_names,
    get_shared_lexicon,
)
from repro.audio.synthesis import SpeechSynthesizer
from repro.audio.waveform import Waveform
from repro.config import SAMPLE_RATE
from repro.dsp.engine import FeatureEngine
from repro.dsp.feature_cache import FeatureCache
from repro.pipeline.engine import TranscriptionEngine


def benchmark_clips(n_clips: int = 6, seed: int = 0) -> list[Waveform]:
    """Synthetic utterances drawn from the LibriSpeech-like corpus."""
    from repro.text.corpus import librispeech_like_corpus

    if n_clips < 1:
        raise ValueError("n_clips must be >= 1")
    rng = np.random.default_rng(seed)
    sentences = librispeech_like_corpus().sample(n_clips, rng)
    synthesizer = SpeechSynthesizer(sample_rate=SAMPLE_RATE,
                                    lexicon=get_shared_lexicon(),
                                    seed=seed + 7)
    return [synthesizer.synthesize(sentence) for sentence in sentences]


def _fresh_suite(names: tuple[str, ...], search: str):
    """Fresh, uncached suite instances with the given decoder search."""
    suite = [build_fresh_asr(name) for name in names]
    for asr in suite:
        asr.word_decoder.search = search
    return suite


def _mismatches(reference_suites, fast_suites) -> int:
    """Transcriptions that differ between the two passes (must be 0)."""
    count = 0
    for ref, fast in zip(reference_suites, fast_suites):
        results_ref = [ref.target, *ref.auxiliaries.values()]
        results_fast = [fast.target, *fast.auxiliaries.values()]
        for a, b in zip(results_ref, results_fast):
            if (a.text != b.text or a.phonemes != b.phonemes
                    or a.frame_labels != b.frame_labels):
                count += 1
    return count


def run_pipeline_benchmark(n_clips: int = 6, repeats: int = 3,
                           seed: int = 0) -> dict:
    """Time reference vs fast end-to-end recognition; return a report.

    The reference and cold measurements are each one pass over freshly
    built suites (a second pass would be served by the decoders' segment
    memos, which is not what "cold" means); ``repeats`` applies to the
    warm measurement, which is best-of by construction.
    """
    names = default_suite_names()
    clips = benchmark_clips(n_clips, seed)

    reference_suite = _fresh_suite(names, "scalar")
    reference_engine = TranscriptionEngine(
        reference_suite[0], reference_suite[1:], workers=0, cache=False)
    start = time.perf_counter()
    reference_results = [reference_engine.transcribe(clip) for clip in clips]
    reference_seconds = time.perf_counter() - start

    fast_suite = _fresh_suite(names, "fast")
    feature_cache = FeatureCache(capacity=max(64, 4 * n_clips * len(names)))
    fast_engine = TranscriptionEngine(
        fast_suite[0], fast_suite[1:], workers=0, cache=False,
        feature_engine=FeatureEngine(backend="fast", cache=feature_cache))
    start = time.perf_counter()
    cold_results = fast_engine.transcribe_batch(clips)
    cold_seconds = time.perf_counter() - start

    parity_mismatches = _mismatches(reference_results, cold_results)

    warm_seconds = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        warm_results = fast_engine.transcribe_batch(clips)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    parity_mismatches += _mismatches(reference_results, warm_results)

    def _shape(fast_seconds: float) -> dict:
        return {
            "reference_seconds": reference_seconds,
            "fast_seconds": fast_seconds,
            "speedup": (reference_seconds / fast_seconds
                        if fast_seconds > 0 else float("inf")),
            "reference_clips_per_second": (n_clips / reference_seconds
                                           if reference_seconds > 0 else 0.0),
            "fast_clips_per_second": (n_clips / fast_seconds
                                      if fast_seconds > 0 else 0.0),
        }

    from repro.backends.registry import asr_fingerprint

    stats = feature_cache.stats
    return {
        "suite": list(names),
        # Version fingerprints make the numbers attributable to the
        # exact systems that produced them (see docs/BACKENDS.md).
        "suite_fingerprints": {name: asr_fingerprint(name)
                               for name in names},
        "n_clips": n_clips,
        "repeats": repeats,
        "seed": seed,
        "parity_mismatches": parity_mismatches,
        "cold": _shape(cold_seconds),
        "warm": _shape(warm_seconds),
        "feature_cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
        },
    }
