"""Batched detection on top of the transcription engine.

:class:`DetectionPipeline` runs the three stages of MVP-EARS detection —
recognition, similarity calculation, classification — over a *batch* of
clips: recognition fans out through a
:class:`~repro.pipeline.engine.TranscriptionEngine`, similarity scoring
is one :meth:`~repro.similarity.engine.SimilarityEngine.score_suites`
batch call (encode-once fast kernels + the shared pair-score cache), and
classification is one vectorised classifier call for the whole batch.
Per-stage wall-clock timing is reported in the same three components the
paper's overhead experiment (Section V-I) measures; both cache layers'
hit/miss counts ride along on the batch result, so the observer hook
(e.g. :class:`~repro.serving.metrics.ServingMetrics`) sees transcription
*and* pair-score hit rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.audio.waveform import Waveform
from repro.pipeline.engine import SuiteTranscription, TranscriptionEngine

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import:
    # repro.core.detector builds its engine from repro.pipeline.engine.
    from repro.core.detector import DetectionResult, MVPEarsDetector

#: Stage keys reported by the pipeline, matching the paper's overhead
#: experiment components.
STAGE_KEYS: tuple[str, ...] = ("recognition", "similarity", "classification")


@dataclass(frozen=True)
class BatchDetectionResult:
    """Outcome of detecting a batch of clips in one pipeline pass.

    Attributes:
        results: one :class:`~repro.core.detector.DetectionResult` per
            input clip, in input order.
        features: the similarity-score matrix, shape ``(n, n_aux)``.
        predictions: classifier labels (0 benign, 1 adversarial).
        stage_seconds: total wall-clock seconds per stage (keys
            ``recognition``, ``similarity``, ``classification``) plus
            ``total``.
        recognition_overheads: per-clip parallel recognition overhead
            (slowest auxiliary decode time beyond the target's).
        target_decode_seconds: per-clip decode time of the target model
            alone — the baseline the paper compares every overhead
            component against.
        cache_hits: transcriptions served from the engine cache.
        cache_misses: transcriptions actually decoded.
        score_cache_hits: pair scores served from the pair-score cache.
        score_cache_misses: pair scores actually computed.
        feature_cache_hits: front-end feature matrices served from the
            feature cache during this batch.
        feature_cache_misses: front-end feature matrices computed.
    """

    results: list[DetectionResult]
    features: np.ndarray
    predictions: np.ndarray
    stage_seconds: dict = field(default_factory=dict)
    recognition_overheads: np.ndarray = field(default_factory=lambda: np.zeros(0))
    target_decode_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))
    cache_hits: int = 0
    cache_misses: int = 0
    score_cache_hits: int = 0
    score_cache_misses: int = 0
    feature_cache_hits: int = 0
    feature_cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def n_adversarial(self) -> int:
        """Number of clips classified as adversarial."""
        return int(np.sum(self.predictions == 1))

    def mean_stage_seconds(self) -> dict:
        """Per-clip mean wall-clock seconds for each stage."""
        n = max(1, len(self.results))
        return {key: value / n for key, value in self.stage_seconds.items()}


class DetectionPipeline:
    """Batched recognition → similarity → classification.

    Args:
        detector: a fitted :class:`~repro.core.detector.MVPEarsDetector`;
            its scorer and classifier are reused.
        engine: the transcription engine to fan recognition out with.
            Defaults to the detector's own engine, so pipeline and
            single-clip detection share one cache and worker pool.
        observer: optional callable invoked with every non-empty
            :class:`BatchDetectionResult` this pipeline produces — the
            hook the serving layer uses to accumulate throughput/latency
            counters (see :class:`repro.serving.metrics.ServingMetrics`,
            whose ``observe_batch`` method has this signature).
    """

    def __init__(self, detector: MVPEarsDetector,
                 engine: TranscriptionEngine | None = None,
                 observer=None):
        self.detector = detector
        self.engine = engine if engine is not None else detector.engine
        self.observer = observer

    # -------------------------------------------------------------- features
    def transcribe_batch(self, audios: list[Waveform]) -> list[SuiteTranscription]:
        """Recognition stage only: suite transcriptions for a batch."""
        return self.engine.transcribe_batch(audios)

    def score_suites(self, suites: list[SuiteTranscription]) -> np.ndarray:
        """Similarity stage only: score matrix from suite transcriptions.

        One :meth:`SimilarityEngine.score_suites` batch call — every
        distinct transcription in the batch is encoded once and repeated
        pairs come from the pair-score cache.
        """
        return self.detector.scoring.score_suites(
            suites, self.detector.auxiliary_asrs)

    def extract_features(self, audios: list[Waveform]) -> np.ndarray:
        """Similarity-score feature matrix for a batch of clips."""
        return self.score_suites(self.transcribe_batch(audios))

    # -------------------------------------------------------------- detection
    def detect(self, audio: Waveform) -> DetectionResult:
        """Detect a single clip (delegates to the detector)."""
        return self.detector.detect(audio)

    def detect_batch(self, audios: list[Waveform]) -> BatchDetectionResult:
        """Detect a batch of clips with per-stage timing.

        Classification is one vectorised call on the whole score matrix,
        which is how a deployed detector amortises classifier overhead
        across concurrent requests.
        """
        from repro.core.detector import DetectionResult

        audios = list(audios)
        if not audios:
            # Not observed: an empty batch did no work and would dilute
            # observer throughput/batch-size statistics.
            return BatchDetectionResult(
                results=[], features=np.zeros((0, 0)),
                predictions=np.zeros(0, dtype=int),
                stage_seconds=dict.fromkeys((*STAGE_KEYS, "total"), 0.0))
        feature_before = self.engine.feature_stats
        start = time.perf_counter()
        suites = self.engine.transcribe_batch(audios)
        recognition_end = time.perf_counter()
        feature_after = self.engine.feature_stats
        features, score_report = self.detector.scoring.score_suites_report(
            suites, self.detector.auxiliary_asrs)
        similarity_end = time.perf_counter()
        predictions = self.detector.predict_features(features)
        classification_end = time.perf_counter()

        n = len(audios)
        similarity_each = (similarity_end - recognition_end) / n
        classification_each = (classification_end - similarity_end) / n
        overheads = np.array([suite.recognition_overhead for suite in suites])
        results = [
            DetectionResult(
                is_adversarial=bool(predictions[row] == 1),
                scores=features[row],
                target_transcription=suite.target.text,
                auxiliary_transcriptions=suite.auxiliary_texts,
                elapsed_seconds=(suite.wall_seconds + similarity_each
                                 + classification_each),
                timing={
                    "recognition": suite.wall_seconds,
                    "recognition_overhead": suite.recognition_overhead,
                    "similarity": similarity_each,
                    "classification": classification_each,
                },
            )
            for row, suite in enumerate(suites)
        ]
        return self._observed(BatchDetectionResult(
            results=results,
            features=features,
            predictions=np.asarray(predictions, dtype=int),
            stage_seconds={
                "recognition": recognition_end - start,
                "similarity": similarity_end - recognition_end,
                "classification": classification_end - similarity_end,
                "total": classification_end - start,
            },
            recognition_overheads=overheads,
            target_decode_seconds=np.array(
                [suite.target.elapsed_seconds for suite in suites]),
            cache_hits=sum(suite.cache_hits for suite in suites),
            cache_misses=sum(suite.cache_misses for suite in suites),
            score_cache_hits=score_report.cache_hits,
            score_cache_misses=score_report.cache_misses,
            feature_cache_hits=feature_after.hits - feature_before.hits,
            feature_cache_misses=feature_after.misses - feature_before.misses,
        ))

    def _observed(self, batch: BatchDetectionResult) -> BatchDetectionResult:
        if self.observer is not None:
            self.observer(batch)
        return batch
