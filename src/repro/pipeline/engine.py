"""The parallel transcription engine.

The paper's deployment model (Section V-I) runs the target ASR and every
auxiliary ASR *in parallel*, so the recognition overhead of the detector
is only the time the slowest auxiliary needs beyond the target model.
:class:`TranscriptionEngine` implements that model with a
``concurrent.futures`` thread pool: one waveform (or a batch) fans out
across the whole ASR suite, results are cached by audio content hash
(see :mod:`repro.pipeline.cache`), and ``workers=0`` falls back to the
original sequential path so the paper's timing tables stay reproducible.

Threads, not processes, are the right pool here: the simulated ASRs are
numpy-heavy (the FFT front end and template scoring release the GIL) and
their model state is effectively immutable after fitting.  The one
mutable piece is the word decoder's per-instance segment memo dict,
which only ever inserts deterministic values — concurrent inserts are
benign under CPython's atomic dict operations, but it is *not* strictly
read-only; keep that in mind before adding eviction or iteration there.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.asr.base import ASRSystem, Transcription
from repro.audio.waveform import Waveform
from repro.pipeline.cache import CacheStats, TranscriptionCache

#: Environment variable overriding the default worker-pool size.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable opting batch inputs into a shared sample arena
#: (value: arena capacity in megabytes).
SAMPLE_ARENA_ENV = "REPRO_SAMPLE_ARENA"


def resolve_worker_count(n_tasks: int | None = None) -> int:
    """Default number of pool workers.

    Resolution order: the ``REPRO_WORKERS`` environment variable, then the
    CPU count.  When ``n_tasks`` is given the result is capped at it —
    there is no point keeping more threads than concurrent transcriptions.
    """
    raw = os.environ.get(WORKERS_ENV)
    workers = int(raw) if raw else (os.cpu_count() or 1)
    if n_tasks is not None:
        workers = min(workers, n_tasks)
    return max(1, workers)


@lru_cache(maxsize=1)
def get_shared_cache() -> TranscriptionCache:
    """The process-wide transcription cache shared by default engines.

    Sharing one content-hash store across every engine means an engine
    built for DS0+{DS1} reuses transcriptions another engine computed for
    DS0+{DS1, GCS, AT} — the cross-experiment win that makes a full
    benchmark run cheap.  Set ``REPRO_TRANSCRIPTION_CACHE`` to a file path
    to persist the shared cache across processes (call
    :meth:`TranscriptionEngine.save_cache` to write it out).
    """
    return TranscriptionCache(capacity=8192,
                              path=os.environ.get("REPRO_TRANSCRIPTION_CACHE"))


@lru_cache(maxsize=1)
def get_shared_sample_arena():
    """The process-wide shared sample arena, or ``None`` when not opted in.

    Set ``REPRO_SAMPLE_ARENA`` to an arena capacity in megabytes to give
    every default engine one shared-memory slab of content-interned
    samples (see :meth:`repro.serving.arena.ShmArena.intern`).  The win
    is for fork pools — the experiment runner's sharded executor — where
    the parent interns each shard's inputs *before* forking, so children
    read the same physical pages instead of holding copy-on-write
    duplicates.  Creation failures (no POSIX shared memory, bad value)
    resolve to ``None``: the arena is an optimisation, never a
    requirement.
    """
    raw = os.environ.get(SAMPLE_ARENA_ENV)
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    from repro.serving.arena import ShmArena
    try:
        return ShmArena(int(megabytes * (1 << 20)))
    except (ImportError, OSError, ValueError):
        return None


def resolve_transcription_cache(spec) -> TranscriptionCache | bool:
    """Coerce a cache policy into an engine ``cache`` argument.

    The policy surface (``"shared"``/``"private"``/``"off"``/JSON path,
    a bool, or a :class:`TranscriptionCache` instance) is shared with
    :func:`repro.similarity.engine.resolve_score_cache` — see
    :func:`repro.caching.resolve_cache_policy`.  This is what
    :class:`~repro.specs.PipelineSpec`'s ``cache`` field feeds through.
    """
    from repro.caching import resolve_cache_policy
    return resolve_cache_policy(spec, TranscriptionCache,
                                "transcription-cache policy")


@dataclass(frozen=True)
class SuiteTranscription:
    """One waveform transcribed by the whole ASR suite.

    Attributes:
        target: the target model's transcription.
        auxiliaries: auxiliary transcriptions keyed by ASR short name, in
            suite order.
        wall_seconds: wall-clock time of the fan-out (with a warm cache
            this is near zero even though ``elapsed_seconds`` of the
            individual transcriptions records the original decode cost).
        cache_hits: transcriptions served from the cache.
        cache_misses: transcriptions actually decoded.
    """

    target: Transcription
    auxiliaries: dict[str, Transcription]
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def auxiliary_texts(self) -> dict[str, str]:
        """Auxiliary transcription texts keyed by ASR short name."""
        return {name: result.text for name, result in self.auxiliaries.items()}

    @property
    def recognition_overhead(self) -> float:
        """Extra decode time of the slowest auxiliary beyond the target.

        This is the quantity the paper's overhead experiment reports: with
        all ASRs running in parallel, the detector only delays the target
        model's answer by ``max(aux decode time) - target decode time``.
        """
        if not self.auxiliaries:
            return 0.0
        slowest = max(result.elapsed_seconds for result in self.auxiliaries.values())
        return max(0.0, slowest - self.target.elapsed_seconds)


@dataclass
class _TaskResult:
    transcription: Transcription
    from_cache: bool = False


class TranscriptionEngine:
    """Fans waveforms out across a target + auxiliary ASR suite.

    Args:
        target_asr: the model under protection.
        auxiliary_asrs: the diverse auxiliary models.
        workers: pool size.  ``0`` disables the pool entirely (the
            original sequential path); ``None`` resolves a default from
            ``REPRO_WORKERS`` / the CPU count, capped at the suite size.
        cache: ``True`` (default) shares the process-wide cache from
            :func:`get_shared_cache`; ``False``/``None`` disables caching;
            a :class:`TranscriptionCache` instance is used as given.
        cache_path: convenience — when given (and ``cache`` is ``True``)
            a private on-disk cache at this path is used instead of the
            shared one.
        feature_engine: optional :class:`~repro.dsp.engine.FeatureEngine`.
            When set, suite members that support precomputed features get
            their front-end matrices from the engine (computed once per
            (clip, front-end configuration), shared across members and
            batches through the feature cache) and batches are pre-warmed
            through the vectorized batch front end.  Transcriptions are
            identical either way.
        sample_arena: optional :class:`~repro.serving.arena.ShmArena`
            to re-home batch inputs onto (one content-interned resident
            copy per distinct clip, shared with fork children).  Defaults
            to the ``REPRO_SAMPLE_ARENA``-gated process arena from
            :func:`get_shared_sample_arena` (``None`` unless opted in).
    """

    def __init__(self, target_asr: ASRSystem, auxiliary_asrs: list[ASRSystem],
                 workers: int | None = None,
                 cache: TranscriptionCache | bool | None = True,
                 cache_path: str | None = None,
                 feature_engine=None,
                 sample_arena=None):
        self.target_asr = target_asr
        self.auxiliary_asrs = list(auxiliary_asrs)
        self.feature_engine = feature_engine
        self.sample_arena = (sample_arena if sample_arena is not None
                             else get_shared_sample_arena())
        n_systems = 1 + len(self.auxiliary_asrs)
        if workers is None:
            workers = resolve_worker_count(n_systems)
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        if isinstance(cache, TranscriptionCache):
            self.cache: TranscriptionCache | None = cache
        elif cache:
            self.cache = (TranscriptionCache(path=cache_path)
                          if cache_path is not None else get_shared_cache())
        else:
            self.cache = None
        self._pool: ThreadPoolExecutor | None = None
        # Single-flight bookkeeping: key -> Event set when the first task
        # to decode that (ASR, audio) pair has stored its result.
        self._inflight: dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()

    # -------------------------------------------------------------- plumbing
    @property
    def asr_suite(self) -> list[ASRSystem]:
        """Target followed by the auxiliaries, in suite order."""
        return [self.target_asr, *self.auxiliary_asrs]

    @property
    def stats(self) -> CacheStats:
        """Hit/miss statistics of the engine's cache (zeros if disabled)."""
        return self.cache.stats if self.cache is not None else CacheStats()

    @property
    def feature_stats(self):
        """Feature-cache statistics (zeros when no feature engine is set).

        Returns a snapshot copy, so callers can diff before/after values
        around a batch (the live stats object mutates in place).
        """
        from dataclasses import replace

        if self.feature_engine is None:
            from repro.dsp.feature_cache import FeatureCacheStats
            return FeatureCacheStats()
        return replace(self.feature_engine.stats)

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-transcribe")
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def reset_after_fork(self) -> None:
        """Discard runtime state that does not survive ``os.fork``.

        The executor's threads and any single-flight waiters live only
        in the parent process; a forked child that inherited them would
        submit work no thread will ever run.  Worker processes call
        this before serving their first batch.  The child is
        single-threaded at that point, so no locking is needed (and the
        inherited lock itself may have been snapshotted held).
        """
        self._pool = None
        self._inflight = {}
        self._inflight_lock = threading.Lock()

    def __enter__(self) -> "TranscriptionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def save_cache(self, path: str | None = None) -> str:
        """Persist the cache to disk (see :meth:`TranscriptionCache.save`)."""
        if self.cache is None:
            raise RuntimeError("engine has no cache to save")
        return self.cache.save(path)

    # ---------------------------------------------------------- transcription
    def _transcribe(self, asr: ASRSystem, audio: Waveform) -> Transcription:
        """One decode, routed through the feature engine when possible."""
        if self.feature_engine is not None \
                and asr.supports_precomputed_features:
            features = self.feature_engine.features(
                asr.feature_extractor, audio.samples, audio.sample_rate)
            return asr.transcribe_with_features(audio, features)
        return asr.transcribe(audio)

    def _adopt_samples(self, audios: list[Waveform]) -> list[Waveform]:
        """Re-home batch inputs onto the shared sample arena (best effort).

        Each distinct clip (by content hash) is interned once; the
        returned waveforms carry zero-copy read-only views over the
        arena pages, so a fork pool's children read shared physical
        memory instead of copy-on-write duplicates.  Clips the arena
        cannot take (full, or this is a fork child seeing a clip the
        parent never interned) pass through unchanged — the arena is an
        optimisation, never a correctness dependency.
        """
        arena = self.sample_arena
        if arena is None:
            return audios
        from repro.pipeline.cache import waveform_fingerprint
        adopted = []
        for audio in audios:
            if arena.owns(audio.samples):
                adopted.append(audio)
                continue
            view = arena.intern(waveform_fingerprint(audio), audio.samples)
            adopted.append(audio if view is None
                           else replace(audio, samples=view))
        return adopted

    def _prewarm_features(self, audios: list[Waveform]) -> None:
        """Batch-fill the feature cache for every clip a member will decode.

        Clips whose transcription is already cached are skipped — their
        front end will never run.  Each supporting member's missing clips
        go through the backend's batched front end in one stacked pass.
        """
        if self.feature_engine is None:
            return
        for asr in self.asr_suite:
            if not asr.supports_precomputed_features:
                continue
            clips = [(audio.samples, audio.sample_rate) for audio in audios
                     if self.cache is None
                     or TranscriptionCache.key_for(asr, audio) not in self.cache]
            if clips:
                self.feature_engine.prewarm(asr.feature_extractor, clips)

    def _run_one(self, asr: ASRSystem, audio: Waveform) -> _TaskResult:
        if self.cache is None:
            return _TaskResult(self._transcribe(asr, audio), from_cache=False)
        key = TranscriptionCache.key_for(asr, audio)
        cached = self.cache.get(key)
        if cached is not None:
            return _TaskResult(cached, from_cache=True)
        # Single-flight: if another pool task is already decoding this
        # exact (ASR, audio) pair, wait for it instead of decoding twice.
        # An event in the map implies its owner is already running, so a
        # waiter can never starve the owner of its worker slot.
        with self._inflight_lock:
            event = self._inflight.get(key)
            is_owner = event is None
            if is_owner:
                event = self._inflight[key] = threading.Event()
        if not is_owner:
            event.wait()
            cached = self.cache.get(key)
            if cached is not None:
                return _TaskResult(cached, from_cache=True)
            # The owner failed (or the entry was evicted); decode directly.
            return _TaskResult(self._transcribe(asr, audio), from_cache=False)
        try:
            result = self._transcribe(asr, audio)
            self.cache.put(key, result)
        finally:
            event.set()
            with self._inflight_lock:
                self._inflight.pop(key, None)
        return _TaskResult(result, from_cache=False)

    def transcribe_with(self, asr: ASRSystem, audio: Waveform) -> Transcription:
        """Transcribe one waveform with one suite member, through the cache."""
        return self._run_one(asr, audio).transcription

    def _collect(self, tasks: list[_TaskResult], wall_seconds: float) -> SuiteTranscription:
        return SuiteTranscription(
            target=tasks[0].transcription,
            auxiliaries={asr.short_name: task.transcription
                         for asr, task in zip(self.auxiliary_asrs, tasks[1:])},
            wall_seconds=wall_seconds,
            cache_hits=sum(task.from_cache for task in tasks),
            cache_misses=sum(not task.from_cache for task in tasks),
        )

    def transcribe(self, audio: Waveform) -> SuiteTranscription:
        """Fan one waveform out across the whole suite."""
        start = time.perf_counter()
        if self.workers == 0:
            tasks = [self._run_one(asr, audio) for asr in self.asr_suite]
        else:
            futures = [self._executor().submit(self._run_one, asr, audio)
                       for asr in self.asr_suite]
            tasks = [future.result() for future in futures]
        return self._collect(tasks, time.perf_counter() - start)

    def transcribe_batch(self, audios: list[Waveform]) -> list[SuiteTranscription]:
        """Fan a batch of waveforms out across the whole suite.

        The full (waveform × ASR) task grid is submitted to the pool at
        once, so a slow ASR on one clip overlaps with fast ASRs on the
        next clip instead of serialising the batch per sample.
        """
        audios = list(audios)
        if not audios:
            return []
        start = time.perf_counter()
        audios = self._adopt_samples(audios)
        self._prewarm_features(audios)
        suite = self.asr_suite
        if self.workers == 0:
            grid = [[self._run_one(asr, audio) for asr in suite]
                    for audio in audios]
        else:
            futures = [[self._executor().submit(self._run_one, asr, audio)
                        for asr in suite] for audio in audios]
            grid = [[future.result() for future in row] for row in futures]
        wall_seconds = time.perf_counter() - start
        # Attribute the batch wall time evenly; per-transcription decode
        # costs stay available on each Transcription.elapsed_seconds.
        per_item = wall_seconds / len(audios)
        return [self._collect(tasks, per_item) for tasks in grid]
