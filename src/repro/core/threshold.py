"""Threshold-based detector.

Section V-G of the paper evaluates robustness against unseen attacks with a
classifier-free detector: an audio is adversarial if its similarity score
against any auxiliary falls below a threshold ``T``, where ``T`` is chosen
on benign data so the false positive rate stays under a budget (5 % in the
paper).  Varying ``T`` also produces the ROC curves of Figure 5.
"""

from __future__ import annotations

import numpy as np


class ThresholdDetector:
    """Flags an audio as adversarial when its minimum score is below T."""

    def __init__(self, threshold: float | None = None):
        self.threshold = threshold

    # ------------------------------------------------------------- training
    def fit_benign(self, benign_scores: np.ndarray,
                   max_fpr: float = 0.05) -> "ThresholdDetector":
        """Choose the largest threshold whose FPR on benign data is <= ``max_fpr``.

        Args:
            benign_scores: score vectors (or a 1-D array of scores) of benign
                samples only — the detector never sees an AE during training,
                which is the point of the unseen-attack experiment.
            max_fpr: false-positive budget.
        """
        if not 0.0 <= max_fpr < 1.0:
            raise ValueError("max_fpr must be in [0, 1)")
        minima = self._minimum_scores(benign_scores)
        if minima.size == 0:
            raise ValueError("no benign scores supplied")
        # FPR of threshold T = fraction of benign minima strictly below T.
        candidates = np.unique(np.concatenate([[0.0], np.sort(minima), [1.0]]))
        best = 0.0
        for threshold in candidates:
            fpr = float(np.mean(minima < threshold))
            if fpr <= max_fpr and threshold >= best:
                best = float(threshold)
        self.threshold = best
        return self

    # ------------------------------------------------------------- inference
    @staticmethod
    def _minimum_scores(scores: np.ndarray) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim == 1:
            return scores
        if scores.ndim == 2:
            return scores.min(axis=1)
        raise ValueError("scores must be 1-D or 2-D")

    def decision_scores(self, scores: np.ndarray) -> np.ndarray:
        """Detector score per sample: larger means more adversarial."""
        return -self._minimum_scores(scores)

    def predict(self, scores: np.ndarray) -> np.ndarray:
        """1 for adversarial (minimum score below threshold), else 0."""
        if self.threshold is None:
            raise RuntimeError("threshold has not been set; call fit_benign() first")
        return (self._minimum_scores(scores) < self.threshold).astype(int)

    def false_positive_rate(self, benign_scores: np.ndarray) -> float:
        """FPR of the current threshold on benign score vectors."""
        return float(np.mean(self.predict(benign_scores) == 1))

    def defense_rate(self, adversarial_scores: np.ndarray) -> float:
        """Fraction of adversarial samples detected."""
        return float(np.mean(self.predict(adversarial_scores) == 1))
