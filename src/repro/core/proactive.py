"""Proactive ("comprehensive") training against transferable AEs.

Section V-H of the paper trains a detector on the union of the Type-4,
Type-5 and Type-6 MAE AEs — the hypothetical AEs that fool the target model
plus two of the three auxiliaries — together with benign feature vectors.
Such a system detects every weaker AE type (original AEs and Types 1-3)
with ~100 % defense rate, putting the defender "one giant step ahead" of
attackers who have not yet built transferable AEs.
"""

from __future__ import annotations

import numpy as np

from repro.core.mae import MAE_TYPES, ScorePools, synthesize_mae_features
from repro.ml.base import BinaryClassifier
from repro.ml.metrics import ClassificationReport, classification_report, defense_rate
from repro.ml.registry import build_classifier


class ComprehensiveDetector:
    """Detector proactively trained on highly-transferable MAE AE types."""

    #: MAE types used for proactive training (fool two of three auxiliaries).
    TRAINING_TYPES: tuple[str, ...] = ("Type-4", "Type-5", "Type-6")

    def __init__(self, classifier: BinaryClassifier | str = "SVM",
                 n_auxiliaries: int = 3, seed: int = 0):
        self.classifier = (build_classifier(classifier)
                           if isinstance(classifier, str) else classifier)
        self.n_auxiliaries = n_auxiliaries
        self.seed = seed
        self._fitted = False

    def build_training_set(self, pools: ScorePools, benign_features: np.ndarray,
                           n_per_type: int) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the proactive training set (benign + Types 4/5/6)."""
        rng = np.random.default_rng(self.seed)
        mae_blocks = [
            synthesize_mae_features(MAE_TYPES[name], pools, n_per_type,
                                    self.n_auxiliaries, rng=rng)
            for name in self.TRAINING_TYPES
        ]
        adversarial = np.vstack(mae_blocks)
        benign_features = np.asarray(benign_features, dtype=np.float64)
        if benign_features.shape[0] < adversarial.shape[0]:
            # Resample benign vectors so classes stay balanced, mirroring the
            # paper's equally-sized benign / MAE datasets.
            idx = rng.choice(benign_features.shape[0], size=adversarial.shape[0],
                             replace=True)
            benign_block = benign_features[idx]
        else:
            benign_block = benign_features
        features = np.vstack([benign_block, adversarial])
        labels = np.concatenate([np.zeros(benign_block.shape[0], dtype=int),
                                 np.ones(adversarial.shape[0], dtype=int)])
        return features, labels

    def fit(self, pools: ScorePools, benign_features: np.ndarray,
            n_per_type: int = 2400) -> "ComprehensiveDetector":
        """Proactively train the classifier."""
        features, labels = self.build_training_set(pools, benign_features, n_per_type)
        self.classifier.fit(features, labels)
        self._fitted = True
        return self

    # ------------------------------------------------------------- inference
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict labels for score vectors."""
        if not self._fitted:
            raise RuntimeError("detector has not been trained; call fit() first")
        return self.classifier.predict(np.asarray(features, dtype=np.float64))

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> ClassificationReport:
        """Accuracy / FPR / FNR report."""
        return classification_report(np.asarray(labels), self.predict(features))

    def defense_rate(self, adversarial_features: np.ndarray) -> float:
        """Fraction of adversarial feature vectors flagged as adversarial."""
        features = np.asarray(adversarial_features, dtype=np.float64)
        labels = np.ones(features.shape[0], dtype=int)
        return defense_rate(labels, self.predict(features))
