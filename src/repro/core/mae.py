"""Hypothetical multiple-ASR-effective (MAE) AEs in score space.

Section V-H of the paper: no method exists for generating audio AEs that
fool several heterogeneous ASRs at once, but such AEs may appear in the
future.  The detector is not trained on audio, only on similarity-score
vectors — so a hypothetical transferable AE can be *synthesised* as a score
vector.  If an AE fools the target model and auxiliary ``A``, both models
transcribe it as the attacker's command, so the score for ``A`` looks like
that of a benign sample; auxiliaries it cannot fool contribute AE-like
scores.

Six MAE AE types are defined for the ``DS0+{DS1, GCS, AT}`` system
(Table IX): Types 1-3 fool one auxiliary, Types 4-6 fool two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MaeAeType:
    """One of the six hypothetical MAE AE types of Table IX."""

    name: str
    #: indices (into the auxiliary list) of the auxiliaries this AE fools.
    fooled_auxiliaries: tuple[int, ...]

    def label(self, auxiliary_names: tuple[str, ...] = ("DS1", "GCS", "AT")) -> str:
        """Human-readable label, e.g. ``AE(DS0,DS1,GCS)``."""
        fooled = ",".join(auxiliary_names[i] for i in self.fooled_auxiliaries)
        return f"AE(DS0,{fooled})" if fooled else "AE(DS0)"


#: The six MAE AE types of Table IX, for the three-auxiliary system
#: DS0+{DS1, GCS, AT} with auxiliary order (DS1, GCS, AT).
MAE_TYPES: dict[str, MaeAeType] = {
    "Type-1": MaeAeType("Type-1", (0,)),        # fools DS0 and DS1
    "Type-2": MaeAeType("Type-2", (1,)),        # fools DS0 and GCS
    "Type-3": MaeAeType("Type-3", (2,)),        # fools DS0 and AT
    "Type-4": MaeAeType("Type-4", (0, 1)),      # fools DS0, DS1 and GCS
    "Type-5": MaeAeType("Type-5", (0, 2)),      # fools DS0, DS1 and AT
    "Type-6": MaeAeType("Type-6", (1, 2)),      # fools DS0, GCS and AT
}


@dataclass
class ScorePools:
    """Pools of observed similarity scores used to synthesise MAE AEs.

    ``benign`` (λBe in the paper) holds scores measured on benign samples;
    ``adversarial`` (λAk) holds scores measured on real audio AEs.  Both are
    flat 1-D arrays — the paper draws individual scores, not whole vectors.
    """

    benign: np.ndarray
    adversarial: np.ndarray

    def __post_init__(self) -> None:
        self.benign = np.asarray(self.benign, dtype=np.float64).ravel()
        self.adversarial = np.asarray(self.adversarial, dtype=np.float64).ravel()
        if self.benign.size == 0 or self.adversarial.size == 0:
            raise ValueError("both score pools must be non-empty")


def collect_score_pools(benign_features: np.ndarray,
                        adversarial_features: np.ndarray) -> ScorePools:
    """Build λBe / λAk pools from measured feature matrices."""
    return ScorePools(benign=np.asarray(benign_features).ravel(),
                      adversarial=np.asarray(adversarial_features).ravel())


def synthesize_mae_features(mae_type: MaeAeType | str, pools: ScorePools,
                            n_samples: int, n_auxiliaries: int = 3,
                            rng: np.random.Generator | None = None,
                            seed: int = 0) -> np.ndarray:
    """Synthesise feature vectors for hypothetical MAE AEs.

    For every auxiliary the AE fools, a score is drawn from the benign pool
    (the two models agree on the attacker's command); for every auxiliary it
    cannot fool, a score is drawn from the adversarial pool.

    Args:
        mae_type: one of :data:`MAE_TYPES` (or its name).
        pools: observed benign / adversarial score pools.
        n_samples: number of vectors to synthesise.
        n_auxiliaries: dimensionality of the feature vectors.
        rng: random generator (``seed`` is used when omitted).
        seed: fallback seed.
    """
    if isinstance(mae_type, str):
        mae_type = MAE_TYPES[mae_type]
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if any(i >= n_auxiliaries for i in mae_type.fooled_auxiliaries):
        raise ValueError("fooled auxiliary index out of range")
    rng = rng or np.random.default_rng(seed)
    features = np.empty((n_samples, n_auxiliaries))
    for column in range(n_auxiliaries):
        pool = pools.benign if column in mae_type.fooled_auxiliaries else pools.adversarial
        features[:, column] = rng.choice(pool, size=n_samples, replace=True)
    return features
