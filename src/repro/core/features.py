"""Similarity-score feature extraction.

Turns an audio clip (or a batch of pre-computed transcriptions) into the
similarity-score feature vector consumed by the binary classifiers: one
score per auxiliary ASR, each comparing the target ASR's transcription with
that auxiliary's transcription.  Transcription is routed through a
:class:`~repro.pipeline.engine.TranscriptionEngine`, so batches fan out
across the worker pool and repeated clips hit the shared transcription
cache; pass ``workers=0`` (or an engine built that way) to force the
original sequential path.  Scoring is routed through a
:class:`~repro.similarity.engine.SimilarityEngine`, so every function here
is a thin wrapper over its batch APIs: repeated text pairs hit the shared
pair-score cache and each distinct transcription is encoded exactly once.
Pass ``scoring=`` to inject a configured engine (custom backend or private
cache); the ``scorer`` argument alone builds a default engine around it.
"""

from __future__ import annotations

import numpy as np

from repro.asr.base import ASRSystem
from repro.audio.waveform import Waveform
from repro.pipeline.engine import TranscriptionEngine
from repro.similarity.engine import SimilarityEngine
from repro.similarity.scorer import SimilarityScorer


def _resolve_scoring(scorer: SimilarityScorer | str | None,
                     scoring: SimilarityEngine | None) -> SimilarityEngine:
    """The engine to score with; ``scoring`` wins over ``scorer``."""
    if scoring is not None:
        return scoring
    return SimilarityEngine(scorer=scorer)


def suite_score_vector(suite, auxiliary_asrs: list[ASRSystem],
                       scorer: SimilarityScorer | None = None,
                       scoring: SimilarityEngine | None = None) -> np.ndarray:
    """Feature vector from one engine :class:`SuiteTranscription`."""
    return scores_from_transcriptions(
        suite.target.text,
        [suite.auxiliaries[aux.short_name].text for aux in auxiliary_asrs],
        scorer, scoring)


def score_vector(audio: Waveform, target_asr: ASRSystem,
                 auxiliary_asrs: list[ASRSystem],
                 scorer: SimilarityScorer | None = None,
                 engine: TranscriptionEngine | None = None,
                 workers: int | None = None,
                 scoring: SimilarityEngine | None = None) -> np.ndarray:
    """Similarity-score feature vector of a single audio clip."""
    if engine is not None:
        return suite_score_vector(engine.transcribe(audio), auxiliary_asrs,
                                  scorer, scoring)
    with TranscriptionEngine(target_asr, auxiliary_asrs, workers=workers) as engine:
        return suite_score_vector(engine.transcribe(audio), auxiliary_asrs,
                                  scorer, scoring)


def score_vectors(audios: list[Waveform], target_asr: ASRSystem,
                  auxiliary_asrs: list[ASRSystem],
                  scorer: SimilarityScorer | None = None,
                  engine: TranscriptionEngine | None = None,
                  workers: int | None = None,
                  scoring: SimilarityEngine | None = None) -> np.ndarray:
    """Similarity-score feature matrix of a batch of audio clips."""
    if engine is not None:
        suites = engine.transcribe_batch(list(audios))
    else:
        with TranscriptionEngine(target_asr, auxiliary_asrs,
                                 workers=workers) as engine:
            suites = engine.transcribe_batch(list(audios))
    if not suites:
        return np.empty((0, len(auxiliary_asrs)), dtype=np.float64)
    return _resolve_scoring(scorer, scoring).score_suites(suites, auxiliary_asrs)


def scores_from_transcriptions(target_text: str, auxiliary_texts: list[str],
                               scorer: SimilarityScorer | None = None,
                               scoring: SimilarityEngine | None = None) -> np.ndarray:
    """Feature vector from already-computed transcriptions."""
    return np.asarray(
        _resolve_scoring(scorer, scoring).score_texts(target_text,
                                                      auxiliary_texts),
        dtype=np.float64)
