"""Similarity-score feature extraction.

Turns an audio clip (or a batch of pre-computed transcriptions) into the
similarity-score feature vector consumed by the binary classifiers: one
score per auxiliary ASR, each comparing the target ASR's transcription with
that auxiliary's transcription.
"""

from __future__ import annotations

import numpy as np

from repro.asr.base import ASRSystem
from repro.audio.waveform import Waveform
from repro.similarity.scorer import SimilarityScorer, get_scorer


def score_vector(audio: Waveform, target_asr: ASRSystem,
                 auxiliary_asrs: list[ASRSystem],
                 scorer: SimilarityScorer | None = None) -> np.ndarray:
    """Similarity-score feature vector of a single audio clip."""
    scorer = scorer or get_scorer()
    target_text = target_asr.transcribe(audio).text
    scores = [scorer.score(target_text, aux.transcribe(audio).text)
              for aux in auxiliary_asrs]
    return np.array(scores, dtype=np.float64)


def score_vectors(audios: list[Waveform], target_asr: ASRSystem,
                  auxiliary_asrs: list[ASRSystem],
                  scorer: SimilarityScorer | None = None) -> np.ndarray:
    """Similarity-score feature matrix of a batch of audio clips."""
    return np.array([score_vector(audio, target_asr, auxiliary_asrs, scorer)
                     for audio in audios])


def scores_from_transcriptions(target_text: str, auxiliary_texts: list[str],
                               scorer: SimilarityScorer | None = None) -> np.ndarray:
    """Feature vector from already-computed transcriptions."""
    scorer = scorer or get_scorer()
    return np.array([scorer.score(target_text, text) for text in auxiliary_texts])
