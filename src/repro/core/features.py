"""Similarity-score feature extraction.

Turns an audio clip (or a batch of pre-computed transcriptions) into the
similarity-score feature vector consumed by the binary classifiers: one
score per auxiliary ASR, each comparing the target ASR's transcription with
that auxiliary's transcription.  Transcription is routed through a
:class:`~repro.pipeline.engine.TranscriptionEngine`, so batches fan out
across the worker pool and repeated clips hit the shared transcription
cache; pass ``workers=0`` (or an engine built that way) to force the
original sequential path.
"""

from __future__ import annotations

import numpy as np

from repro.asr.base import ASRSystem
from repro.audio.waveform import Waveform
from repro.pipeline.engine import TranscriptionEngine
from repro.similarity.scorer import SimilarityScorer, get_scorer


def suite_score_vector(suite, auxiliary_asrs: list[ASRSystem],
                       scorer: SimilarityScorer | None = None) -> np.ndarray:
    """Feature vector from one engine :class:`SuiteTranscription`."""
    return scores_from_transcriptions(
        suite.target.text,
        [suite.auxiliaries[aux.short_name].text for aux in auxiliary_asrs],
        scorer)


def score_vector(audio: Waveform, target_asr: ASRSystem,
                 auxiliary_asrs: list[ASRSystem],
                 scorer: SimilarityScorer | None = None,
                 engine: TranscriptionEngine | None = None,
                 workers: int | None = None) -> np.ndarray:
    """Similarity-score feature vector of a single audio clip."""
    if engine is not None:
        return suite_score_vector(engine.transcribe(audio), auxiliary_asrs, scorer)
    with TranscriptionEngine(target_asr, auxiliary_asrs, workers=workers) as engine:
        return suite_score_vector(engine.transcribe(audio), auxiliary_asrs, scorer)


def score_vectors(audios: list[Waveform], target_asr: ASRSystem,
                  auxiliary_asrs: list[ASRSystem],
                  scorer: SimilarityScorer | None = None,
                  engine: TranscriptionEngine | None = None,
                  workers: int | None = None) -> np.ndarray:
    """Similarity-score feature matrix of a batch of audio clips."""
    if engine is not None:
        suites = engine.transcribe_batch(list(audios))
    else:
        with TranscriptionEngine(target_asr, auxiliary_asrs,
                                 workers=workers) as engine:
            suites = engine.transcribe_batch(list(audios))
    if not suites:
        return np.empty((0, len(auxiliary_asrs)), dtype=np.float64)
    return np.array([suite_score_vector(suite, auxiliary_asrs, scorer)
                     for suite in suites], dtype=np.float64)


def scores_from_transcriptions(target_text: str, auxiliary_texts: list[str],
                               scorer: SimilarityScorer | None = None) -> np.ndarray:
    """Feature vector from already-computed transcriptions."""
    scorer = scorer or get_scorer()
    return np.array([scorer.score(target_text, text) for text in auxiliary_texts])
