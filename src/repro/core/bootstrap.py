"""Legacy one-call construction, now a shim over the spec tree.

:func:`default_detector` predates the declarative configuration surface
(:mod:`repro.specs` / :mod:`repro.build`): every capability it grew was
bolted on as another keyword argument.  The keywords still work — each
call translates them into a :class:`~repro.specs.DetectorSpec` and
builds through :func:`repro.build.build`, so the result is identical —
but new code should construct the spec directly::

    from repro import DetectorSpec, build

    detector = build(DetectorSpec.default(scale="tiny"))       # the paper's system
    detector = build("my_config.json")                          # or from a file

Passing any keyword argument emits a :class:`DeprecationWarning`;
``docs/CONFIG.md`` documents the replacement for each one.
"""

from __future__ import annotations

import warnings

from repro.asr.registry import default_suite_names
from repro.core.detector import MVPEarsDetector
from repro.pipeline.cache import TranscriptionCache
from repro.similarity.score_cache import PairScoreCache
from repro.similarity.scorer import SimilarityScorer
from repro.specs import DEFENSE_MODES, DetectorSpec  # noqa: F401 - re-export

#: Auxiliary suite of the paper's headline system DS0+{DS1, GCS, AT},
#: derived from the ASR registry's default-suite registrations.
DEFAULT_AUXILIARIES: tuple[str, ...] = default_suite_names()[1:]

_UNSET = object()


def default_detector(target=_UNSET, auxiliaries=_UNSET, classifier=_UNSET,
                     scale=_UNSET, workers=_UNSET, cache=_UNSET,
                     defense=_UNSET, transforms=_UNSET, scorer=_UNSET,
                     scoring_backend=_UNSET,
                     score_cache=_UNSET) -> MVPEarsDetector:
    """Build and fit a default detection system (legacy keyword surface).

    .. deprecated::
        Construct a :class:`~repro.specs.DetectorSpec` and call
        :func:`repro.build.build` instead; every keyword below maps to
        one spec field (see ``docs/CONFIG.md``).  A bare
        ``default_detector()`` is equivalent to
        ``build(DetectorSpec.default())``.

    Args:
        target: target ASR short name (spec: ``suite.target``).
        auxiliaries: auxiliary short names (spec: ``suite.auxiliaries``).
        classifier: classifier registry name (spec: ``classifier.name``).
        scale: scored-dataset scale preset (spec: ``training.scale``).
        workers: transcription worker-pool size (spec:
            ``pipeline.workers``).
        cache: transcription cache policy — a policy string, bool, or a
            :class:`TranscriptionCache` instance (spec:
            ``pipeline.cache``).
        defense: ``multi-asr`` / ``transform`` / ``combined`` (spec:
            the shape of ``suite.auxiliaries``).
        transforms: transformation ensemble for the transform-based
            modes — spec strings or built ``Transform`` instances
            (spec: ``suite.auxiliaries[i].transform``).
        scorer: similarity method name or a
            :class:`~repro.similarity.scorer.SimilarityScorer` (spec:
            ``scoring.scorer``).
        scoring_backend: scoring backend name (spec: ``scoring.backend``).
        score_cache: pair-score cache policy — a policy string, bool, or
            a :class:`PairScoreCache` instance (spec: ``scoring.cache``).

    Returns:
        A fitted :class:`~repro.core.detector.MVPEarsDetector` (a
        :class:`~repro.defenses.ensemble.TransformEnsembleDetector` for
        the transform-based modes).
    """
    from repro.build import build

    passed = {name: value for name, value in (
        ("target", target), ("auxiliaries", auxiliaries),
        ("classifier", classifier), ("scale", scale), ("workers", workers),
        ("cache", cache), ("defense", defense), ("transforms", transforms),
        ("scorer", scorer), ("scoring_backend", scoring_backend),
        ("score_cache", score_cache)) if value is not _UNSET}
    if passed:
        warnings.warn(
            f"default_detector({', '.join(sorted(passed))}=...) keywords are "
            f"deprecated; build a DetectorSpec and call repro.build() "
            f"(see docs/CONFIG.md)", DeprecationWarning, stacklevel=2)

    overrides: dict = {}
    spec_kwargs: dict = {}
    for name in ("target", "classifier", "scale", "workers", "defense",
                 "scoring_backend"):
        if name in passed:
            spec_kwargs[name] = passed[name]
    if "auxiliaries" in passed:
        spec_kwargs["auxiliaries"] = tuple(passed["auxiliaries"])

    if "cache" in passed:
        value = passed["cache"]
        if isinstance(value, TranscriptionCache):
            overrides["cache"] = value
        elif isinstance(value, (bool, type(None))):
            spec_kwargs["cache"] = "shared" if value else "off"
        else:
            spec_kwargs["cache"] = value
    if "score_cache" in passed:
        value = passed["score_cache"]
        if isinstance(value, (PairScoreCache, bool, type(None))):
            overrides["score_cache"] = value
        else:
            spec_kwargs["score_cache"] = value
    if "scorer" in passed:
        value = passed["scorer"]
        if isinstance(value, SimilarityScorer):
            overrides["scorer"] = value
        elif value is not None:
            spec_kwargs["scorer"] = value
    from repro.build import default_spec_with_transforms
    spec, transform_overrides = default_spec_with_transforms(
        passed.get("transforms"), **spec_kwargs)
    overrides.update(transform_overrides)
    return build(spec, overrides=overrides)
