"""One-call construction of a fitted default detector.

Every consumer that just wants "the detector from the paper, ready to
screen audio" — the CLI, the examples, a notebook — repeats the same
four steps: build the target ASR, build the auxiliaries, load the scored
dataset for a scale preset, fit the classifier on its score vectors.
:func:`default_detector` bundles them, for all three defense modes:

* ``multi-asr`` — the paper's system: diverse auxiliary ASR models,
  classifier fitted on the pre-computed scored dataset.
* ``transform`` — a :class:`~repro.defenses.ensemble.TransformEnsembleDetector`
  whose auxiliaries are transformed views of the target model, fitted on
  fresh scores from the audio bundle.
* ``combined`` — both auxiliary kinds in one suite.

The scored dataset and the audio bundle are disk-cached under
``.repro_cache/`` (see :mod:`repro.datasets.scores`), so after the first
call at a given scale this is cheap: the ASR simulators come from the
registry cache and the classifier fits on a few hundred score vectors.
"""

from __future__ import annotations

from repro.core.detector import MVPEarsDetector
from repro.similarity.engine import SimilarityEngine, resolve_score_cache

#: Auxiliary suite of the paper's headline system DS0+{DS1, GCS, AT}.
DEFAULT_AUXILIARIES: tuple[str, ...] = ("DS1", "GCS", "AT")

#: The defense modes :func:`default_detector` can build.
DEFENSE_MODES: tuple[str, ...] = ("multi-asr", "transform", "combined")


def default_detector(target: str = "DS0",
                     auxiliaries: tuple[str, ...] = DEFAULT_AUXILIARIES,
                     classifier: str = "SVM",
                     scale: str | None = None,
                     workers: int | None = None,
                     cache=True,
                     defense: str = "multi-asr",
                     transforms=None,
                     scorer: str | None = None,
                     scoring_backend: str | None = None,
                     score_cache="shared") -> MVPEarsDetector:
    """Build and fit a default detection system.

    Args:
        target: target ASR short name (the model under protection).
        auxiliaries: auxiliary short names; must be drawn from the scored
            dataset's auxiliary order (``DS1``, ``GCS``, ``AT``).
            Ignored by ``defense="transform"``.
        classifier: classifier registry name (default: the paper's SVM).
        scale: scored-dataset scale preset used for training
            (``tiny``/``small``/``medium``/``paper``; ``None`` reads
            ``REPRO_SCALE``, defaulting to ``small``).
        workers: transcription worker-pool size (``None``: CPU count,
            ``0``: the sequential path).
        cache: transcription cache policy, passed through to the engine.
        defense: ``multi-asr`` (the paper's system), ``transform``
            (transformation ensemble only) or ``combined`` (both).
        transforms: transformation ensemble for the ``transform`` and
            ``combined`` modes (default:
            :func:`~repro.defenses.transforms.default_transform_suite`).
        scorer: similarity method name (default: the paper's
            ``PE_JaroWinkler``).
        scoring_backend: scoring backend name (``"fast"`` — the default —
            or ``"reference"``, the paper-faithful scalar path).
        score_cache: pair-score cache policy — ``"shared"`` (default),
            ``"private"``, ``"off"``, a file path, a bool, or a
            :class:`~repro.similarity.score_cache.PairScoreCache` (see
            :func:`~repro.similarity.engine.resolve_score_cache`).

    Returns:
        A fitted :class:`~repro.core.detector.MVPEarsDetector` (a
        :class:`~repro.defenses.ensemble.TransformEnsembleDetector` for
        the transform-based modes).
    """
    if defense not in DEFENSE_MODES:
        raise KeyError(
            f"unknown defense mode {defense!r}; available: {list(DEFENSE_MODES)}")
    # Imported lazily: repro.datasets itself builds on repro.core.
    from repro.asr.registry import build_asr
    from repro.datasets.scores import load_scored_dataset

    scoring = SimilarityEngine(scorer=scorer, backend=scoring_backend,
                               cache=resolve_score_cache(score_cache))
    if defense == "multi-asr":
        detector = MVPEarsDetector(
            build_asr(target),
            [build_asr(name) for name in auxiliaries],
            classifier=classifier,
            workers=workers,
            cache=cache,
            scoring=scoring,
        )
        dataset = load_scored_dataset(scale)
        features, labels = dataset.features_for(
            tuple(auxiliaries), method=scoring.scorer.name, scoring=scoring)
        return detector.fit_features(features, labels)

    from repro.datasets.builder import load_standard_bundle
    from repro.defenses.ensemble import TransformEnsembleDetector

    asr_auxiliaries = ([build_asr(name) for name in auxiliaries]
                       if defense == "combined" else [])
    detector = TransformEnsembleDetector(
        build_asr(target),
        transforms=transforms,
        asr_auxiliaries=asr_auxiliaries,
        classifier=classifier,
        workers=workers,
        cache=cache,
        scoring=scoring,
    )
    return detector.fit_bundle(load_standard_bundle(scale))
