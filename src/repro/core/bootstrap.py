"""One-call construction of a fitted default detector.

Every consumer that just wants "the detector from the paper, ready to
screen audio" — the CLI, the examples, a notebook — repeats the same
four steps: build the target ASR, build the auxiliaries, load the scored
dataset for a scale preset, fit the classifier on its score vectors.
:func:`default_detector` bundles them.

The scored dataset is disk-cached under ``.repro_cache/`` (see
:mod:`repro.datasets.scores`), so after the first call at a given scale
this is cheap: the ASR simulators come from the registry cache and the
classifier fits on a few hundred score vectors.
"""

from __future__ import annotations

from repro.core.detector import MVPEarsDetector

#: Auxiliary suite of the paper's headline system DS0+{DS1, GCS, AT}.
DEFAULT_AUXILIARIES: tuple[str, ...] = ("DS1", "GCS", "AT")


def default_detector(target: str = "DS0",
                     auxiliaries: tuple[str, ...] = DEFAULT_AUXILIARIES,
                     classifier: str = "SVM",
                     scale: str | None = None,
                     workers: int | None = None,
                     cache=True) -> MVPEarsDetector:
    """Build and fit the paper's default detection system.

    Args:
        target: target ASR short name (the model under protection).
        auxiliaries: auxiliary short names; must be drawn from the scored
            dataset's auxiliary order (``DS1``, ``GCS``, ``AT``).
        classifier: classifier registry name (default: the paper's SVM).
        scale: scored-dataset scale preset used for training
            (``tiny``/``small``/``medium``/``paper``; ``None`` reads
            ``REPRO_SCALE``, defaulting to ``small``).
        workers: transcription worker-pool size (``None``: CPU count,
            ``0``: the sequential path).
        cache: transcription cache policy, passed through to the engine.

    Returns:
        A fitted :class:`~repro.core.detector.MVPEarsDetector`.
    """
    # Imported lazily: repro.datasets itself builds on repro.core.
    from repro.asr.registry import build_asr
    from repro.datasets.scores import load_scored_dataset

    detector = MVPEarsDetector(
        build_asr(target),
        [build_asr(name) for name in auxiliaries],
        classifier=classifier,
        workers=workers,
        cache=cache,
    )
    dataset = load_scored_dataset(scale)
    features, labels = dataset.features_for(tuple(auxiliaries))
    return detector.fit_features(features, labels)
