"""The MVP-EARS detector (Figure 3 of the paper).

A detector is a target ASR, a set of auxiliary ASRs, a similarity scorer
and a binary classifier.  Given an audio clip, every ASR transcribes it in
parallel — recognition fans out across a
:class:`~repro.pipeline.engine.TranscriptionEngine` worker pool, with
``workers=0`` selecting the original sequential path — one similarity
score per auxiliary is computed between the target transcription and that
auxiliary's transcription through a
:class:`~repro.similarity.engine.SimilarityEngine` (pluggable backend +
shared pair-score cache, the ``scoring`` constructor argument), and the
score vector is classified as benign or adversarial.  Batched detection
over many clips lives in
:class:`~repro.pipeline.detection.DetectionPipeline`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.asr.base import ASRSystem
from repro.audio.waveform import Waveform
from repro.core.features import score_vectors, suite_score_vector
from repro.ml.base import BinaryClassifier
from repro.ml.metrics import ClassificationReport, classification_report
from repro.ml.registry import build_classifier
from repro.pipeline.cache import TranscriptionCache
from repro.pipeline.engine import TranscriptionEngine
from repro.similarity.engine import ScoringBackend, SimilarityEngine
from repro.similarity.scorer import SimilarityScorer


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of detecting one audio clip.

    Attributes:
        is_adversarial: the detector's verdict.
        scores: the per-auxiliary similarity scores.
        target_transcription: what the target ASR heard.
        auxiliary_transcriptions: what each auxiliary ASR heard.
        elapsed_seconds: end-to-end detection time, split into the three
            components measured by the paper's overhead experiment.
        timing: dict with ``recognition``, ``recognition_overhead``,
            ``similarity`` and ``classification`` wall-clock seconds.
    """

    is_adversarial: bool
    scores: np.ndarray
    target_transcription: str
    auxiliary_transcriptions: dict[str, str]
    elapsed_seconds: float
    timing: dict = field(default_factory=dict)


class MVPEarsDetector:
    """Multi-version-programming-inspired audio AE detector.

    Args:
        target_asr: the model under protection.
        auxiliary_asrs: the diverse auxiliary models.
        classifier: a fitted-later binary classifier or a registry name.
        scorer: similarity scorer or registry name (default: the paper's
            PE_JaroWinkler); ignored when ``scoring`` is a pre-built
            engine.
        workers: transcription worker-pool size; ``0`` keeps the original
            sequential path, ``None`` picks a default from the CPU count.
        engine: inject a pre-built :class:`TranscriptionEngine` (for a
            shared pool/cache); overrides ``workers``/``cache``.
        cache: transcription cache policy, passed through to the engine
            (``True`` shares the process-wide content-hash cache).
        scoring: similarity scoring engine — a pre-built
            :class:`~repro.similarity.engine.SimilarityEngine`, a backend
            (instance or registry name ``"fast"``/``"reference"``), or
            ``None`` for the default fast engine with the shared
            pair-score cache.
        feature_engine: optional :class:`~repro.dsp.engine.FeatureEngine`
            handed to a newly built transcription engine so suite members
            share front-end feature matrices (ignored when ``engine`` is
            injected — the injected engine keeps its own).
    """

    def __init__(self, target_asr: ASRSystem, auxiliary_asrs: list[ASRSystem],
                 classifier: BinaryClassifier | str = "SVM",
                 scorer: SimilarityScorer | str | None = None,
                 workers: int | None = None,
                 engine: TranscriptionEngine | None = None,
                 cache: TranscriptionCache | bool | None = True,
                 scoring: SimilarityEngine | ScoringBackend | str | None = None,
                 feature_engine=None):
        if not auxiliary_asrs:
            raise ValueError("at least one auxiliary ASR is required")
        self.target_asr = target_asr
        self.auxiliary_asrs = list(auxiliary_asrs)
        self.classifier = (build_classifier(classifier)
                           if isinstance(classifier, str) else classifier)
        self.scoring = (scoring if isinstance(scoring, SimilarityEngine)
                        else SimilarityEngine(scorer=scorer, backend=scoring))
        self.scorer = self.scoring.scorer
        self.engine = engine if engine is not None else TranscriptionEngine(
            target_asr, self.auxiliary_asrs, workers=workers, cache=cache,
            feature_engine=feature_engine)
        self._fitted = False

    def close(self) -> None:
        """Shut the engine's worker pool down (idempotent)."""
        self.engine.close()

    # ----------------------------------------------------------- description
    @property
    def system_name(self) -> str:
        """Name in the paper's ``Target+{Aux1, ...}`` notation."""
        auxiliaries = ", ".join(asr.short_name for asr in self.auxiliary_asrs)
        return f"{self.target_asr.short_name}+{{{auxiliaries}}}"

    @property
    def n_features(self) -> int:
        """Dimensionality of the similarity-score feature vector."""
        return len(self.auxiliary_asrs)

    # ------------------------------------------------------------- training
    def extract_features(self, audios: list[Waveform]) -> np.ndarray:
        """Similarity-score feature matrix for a batch of audio clips."""
        return score_vectors(audios, self.target_asr, self.auxiliary_asrs,
                             engine=self.engine, scoring=self.scoring)

    def fit(self, audios: list[Waveform], labels: np.ndarray) -> "MVPEarsDetector":
        """Train the binary classifier on labelled audio clips."""
        features = self.extract_features(audios)
        return self.fit_features(features, labels)

    def fit_features(self, features: np.ndarray, labels: np.ndarray) -> "MVPEarsDetector":
        """Train the binary classifier on pre-computed score vectors."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.n_features:
            raise ValueError(
                f"expected features with {self.n_features} columns, got {features.shape}")
        self.classifier.fit(features, np.asarray(labels))
        self._fitted = True
        return self

    # ------------------------------------------------------------- inference
    def detect(self, audio: Waveform) -> DetectionResult:
        """Classify a single audio clip, reporting component timings."""
        if not self._fitted:
            raise RuntimeError("detector has not been trained; call fit() first")
        start = time.perf_counter()
        suite = self.engine.transcribe(audio)
        recognition_end = time.perf_counter()

        scores = suite_score_vector(suite, self.auxiliary_asrs,
                                    scoring=self.scoring)
        similarity_end = time.perf_counter()
        verdict = bool(self.classifier.predict(scores[None, :])[0] == 1)
        classification_end = time.perf_counter()

        return DetectionResult(
            is_adversarial=verdict,
            scores=scores,
            target_transcription=suite.target.text,
            auxiliary_transcriptions=suite.auxiliary_texts,
            elapsed_seconds=classification_end - start,
            timing={
                "recognition": recognition_end - start,
                # Recognition overhead attributable to the detector is the
                # extra decode time of the slowest auxiliary beyond the
                # target model, since all ASRs run in parallel.
                "recognition_overhead": suite.recognition_overhead,
                "similarity": similarity_end - recognition_end,
                "classification": classification_end - similarity_end,
            },
        )

    def predict_features(self, features: np.ndarray) -> np.ndarray:
        """Predict labels for pre-computed score vectors."""
        if not self._fitted:
            raise RuntimeError("detector has not been trained; call fit() first")
        return self.classifier.predict(np.asarray(features, dtype=np.float64))

    def evaluate_features(self, features: np.ndarray,
                          labels: np.ndarray) -> ClassificationReport:
        """Accuracy / FPR / FNR report on pre-computed score vectors."""
        predictions = self.predict_features(features)
        return classification_report(np.asarray(labels), predictions)
