"""MVP-EARS detection core — the paper's primary contribution.

The detection system runs a target ASR and one or more auxiliary ASRs on
every input audio, converts each transcription to a phonetic encoding,
computes per-auxiliary similarity scores against the target transcription,
and feeds the score vector into a binary classifier.  The package also
contains the threshold detector used for unseen-attack experiments, the
synthesis of hypothetical multiple-ASR-effective (MAE) AEs in score space,
and the proactive ("comprehensive") training procedure of Section V-H.
"""

from repro.core.bootstrap import DEFAULT_AUXILIARIES, default_detector
from repro.core.detector import DetectionResult, MVPEarsDetector
from repro.core.threshold import ThresholdDetector
from repro.core.features import score_vector, score_vectors
from repro.core.mae import (
    MAE_TYPES,
    MaeAeType,
    ScorePools,
    collect_score_pools,
    synthesize_mae_features,
)
from repro.core.proactive import ComprehensiveDetector

__all__ = [
    "DEFAULT_AUXILIARIES",
    "default_detector",
    "DetectionResult",
    "MVPEarsDetector",
    "ThresholdDetector",
    "score_vector",
    "score_vectors",
    "MAE_TYPES",
    "MaeAeType",
    "ScorePools",
    "collect_score_pools",
    "synthesize_mae_features",
    "ComprehensiveDetector",
]
