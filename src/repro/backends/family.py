"""Procedural generation of diverse simulated-ASR families.

The paper's defense strength grows with the number and diversity of ASR
versions in the suite, but the library shipped only four hand-tuned
simulators.  :func:`simulated_family` generates arbitrarily many
:class:`~repro.asr.simulated.SimulatedASR` variants that differ along
every axis the hand-built ones do — front end (MFCC / log-mel / LPC
with distinct frame geometries), acoustic template seed and noise
floor, decoder style (greedy / smoothed / viterbi with their window and
subsampling knobs), per-member lexicon subsets and language-model
smoothing — so suites of 8–16 versions are cheap and expressible as
pure config.

Members are addressed as ``sim-00``, ``sim-01``, ... through the open
ASR registry (:func:`repro.asr.registry.build_asr` resolves the family
dynamically, like ``KAL-fs<N>``).  Generation is deterministic and
*prefix-stable*: ``simulated_family(8)`` is exactly the first half of
``simulated_family(16)``, so growing a suite never changes the members
already in it (and never invalidates their caches).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.asr.simulated import SimulatedASR
from repro.config import SAMPLE_RATE
from repro.dsp.features import (
    LogMelFeatureExtractor,
    LpcFeatureExtractor,
    MfccFeatureExtractor,
)
from repro.dsp.mfcc import MfccConfig
from repro.text.corpus import (
    attack_command_corpus,
    commonvoice_like_corpus,
    librispeech_like_corpus,
)
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon

#: Default generation seed: the one the registry's ``sim-<NN>`` names
#: resolve with, so a name always denotes the same member everywhere.
FAMILY_SEED = 20019

_FRONTENDS = ("mfcc", "logmel", "lpc")
_DECODE_STYLES = ("greedy", "smoothed", "viterbi")
_LM_K_POOL = (0.05, 0.1, 0.2, 0.5)


@dataclass(frozen=True)
class FamilyMemberConfig:
    """Full recipe of one generated family member.

    Serialisable (``asdict`` + JSON) so a member's identity can be
    fingerprinted and recorded in run manifests.
    """

    index: int
    short_name: str
    frontend: str                  # "mfcc" | "logmel" | "lpc"
    frame_length: int
    hop_length: int
    n_coeffs: int                  # mfcc/cepstral count, or LPC order
    seed: int
    template_noise: float
    temperature: float
    decode_style: str              # "greedy" | "smoothed" | "viterbi"
    smoothing_window: int
    min_phoneme_run: int
    frame_subsampling_factor: int
    lexicon_fraction: float
    lm_k: float


def simulated_family(n: int, seed: int = FAMILY_SEED
                     ) -> tuple[FamilyMemberConfig, ...]:
    """Generate the first ``n`` member configurations of a family.

    One sequential random stream drives the whole family and every
    member consumes a fixed number of draws, which is what makes the
    result prefix-stable: member ``i`` is identical in every family of
    size ``> i`` generated from the same ``seed``.
    """
    if n < 0:
        raise ValueError("family size must be non-negative")
    rng = np.random.default_rng(seed)
    members = []
    for index in range(n):
        # Fixed draw count per member (prefix stability).
        template_noise = float(rng.uniform(0.01, 0.06))
        temperature = float(rng.uniform(3.5, 5.5))
        lexicon_fraction = float(rng.uniform(0.70, 0.95))
        lm_k = float(_LM_K_POOL[int(rng.integers(0, len(_LM_K_POOL)))])
        hop_jitter = int(rng.integers(0, 4))
        member_seed = int(rng.integers(0, 2**31 - 1))

        frontend = _FRONTENDS[index % len(_FRONTENDS)]
        # Rotate the decode style independently of the front end so the
        # two axes do not stay locked together.
        decode_style = _DECODE_STYLES[(index + index // 3)
                                      % len(_DECODE_STYLES)]
        # Geometry folds the index in directly, which guarantees every
        # member a distinct front-end cache tag even within one
        # front-end kind.
        frame_length = 384 + 16 * (index % 5)
        hop_length = 140 + 8 * index + 4 * hop_jitter
        n_coeffs = 12 + index % 3
        members.append(FamilyMemberConfig(
            index=index,
            short_name=f"sim-{index:02d}",
            frontend=frontend,
            frame_length=frame_length,
            hop_length=hop_length,
            n_coeffs=n_coeffs,
            seed=member_seed,
            template_noise=round(template_noise, 6),
            temperature=round(temperature, 6),
            decode_style=decode_style,
            smoothing_window=2 + index % 2,
            min_phoneme_run=2,
            frame_subsampling_factor=(1 + index % 2
                                      if decode_style == "viterbi" else 1),
            lexicon_fraction=round(lexicon_fraction, 6),
            lm_k=lm_k,
        ))
    return tuple(members)


def family_member_config(index: int,
                         seed: int = FAMILY_SEED) -> FamilyMemberConfig:
    """The configuration of member ``index`` (prefix-stable lookup)."""
    if index < 0:
        raise ValueError("family member index must be non-negative")
    return simulated_family(index + 1, seed)[-1]


def is_family_name(name) -> bool:
    """Whether ``name`` addresses a generated family member."""
    return (isinstance(name, str) and name.startswith("sim-")
            and name.removeprefix("sim-").isdigit())


def family_index(name: str) -> int:
    """The member index a ``sim-<NN>`` name addresses."""
    if not is_family_name(name):
        raise ValueError(f"not a family member name: {name!r}")
    return int(name.removeprefix("sim-"))


def family_fingerprint(name: str, seed: int = FAMILY_SEED) -> str:
    """Version digest of a family member: the hash of its full recipe."""
    config = family_member_config(family_index(name), seed)
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def _member_feature_extractor(config: FamilyMemberConfig):
    if config.frontend == "mfcc":
        return MfccFeatureExtractor(MfccConfig(
            sample_rate=SAMPLE_RATE, frame_length=config.frame_length,
            hop_length=config.hop_length, n_fft=512, n_mels=26,
            n_mfcc=config.n_coeffs))
    if config.frontend == "logmel":
        return LogMelFeatureExtractor(
            sample_rate=SAMPLE_RATE, frame_length=config.frame_length,
            hop_length=config.hop_length, n_fft=512, n_mels=32,
            n_ceps=config.n_coeffs)
    if config.frontend == "lpc":
        return LpcFeatureExtractor(
            sample_rate=SAMPLE_RATE, frame_length=config.frame_length,
            hop_length=config.hop_length, order=config.n_coeffs,
            style="cepstrum")
    raise ValueError(f"unknown front end {config.frontend!r}")


def _member_lexicon(config: FamilyMemberConfig) -> Lexicon:
    from repro.asr.registry import get_shared_lexicon
    words = list(get_shared_lexicon().words)
    keep = max(1, int(round(len(words) * config.lexicon_fraction)))
    rng = np.random.default_rng((config.seed, config.index, 17))
    selected = rng.choice(len(words), size=keep, replace=False)
    return Lexicon([words[i] for i in sorted(selected)])


def _member_language_model(config: FamilyMemberConfig) -> BigramLanguageModel:
    model = BigramLanguageModel(k=config.lm_k)
    model.fit(librispeech_like_corpus())
    model.fit(commonvoice_like_corpus())
    model.fit(attack_command_corpus())
    model.fit(attack_command_corpus(two_word_only=True))
    return model


def build_family_member(config: FamilyMemberConfig) -> SimulatedASR:
    """Construct the :class:`SimulatedASR` a member config describes."""
    from repro.asr.registry import get_training_synthesizer
    payload = json.dumps(asdict(config), sort_keys=True)
    digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]
    return SimulatedASR(
        # The config digest is part of the name so the transcription
        # caches separate members generated from different recipes.
        name=f"Simulated family member {config.index:02d} [{digest}]",
        short_name=config.short_name,
        feature_extractor=_member_feature_extractor(config),
        lexicon=_member_lexicon(config),
        language_model=_member_language_model(config),
        synthesizer=get_training_synthesizer(),
        seed=config.seed,
        template_noise=config.template_noise,
        temperature=config.temperature,
        decode_style=config.decode_style,
        min_phoneme_run=config.min_phoneme_run,
        frame_subsampling_factor=config.frame_subsampling_factor,
        smoothing_window=config.smoothing_window,
    )


def family_suite_names(n: int) -> tuple[str, ...]:
    """The registry names of the first ``n`` family members."""
    return tuple(f"sim-{index:02d}" for index in range(n))
