"""wav2vec2-style CTC adapters (torchscript and ONNX exports).

Both adapters run an acoustic model that maps a 16 kHz float waveform to
per-frame character logits and decode them with the pure-numpy greedy
CTC decoder from :mod:`repro.backends.base` — no third-party decoder is
needed, only the inference runtime.  The model file is supplied via a
constructor argument or an environment variable, so the same registered
name serves any wav2vec2-style export.
"""

from __future__ import annotations

import os

import numpy as np

from repro.backends.base import BackendAdapter, ctc_greedy_decode

#: The standard wav2vec2 character vocabulary (32 CTC tokens, blank at
#: index 0, ``|`` as the word delimiter) used by the stock English
#: checkpoints.  Exports with a custom vocab pass their own.
DEFAULT_CTC_VOCAB: tuple[str, ...] = (
    "<pad>", "<s>", "</s>", "<unk>", "|",
    "E", "T", "A", "O", "N", "I", "H", "S", "R", "D", "L", "U", "M",
    "W", "C", "F", "G", "Y", "P", "B", "V", "K", "'", "X", "J", "Q", "Z",
)


def _as_numpy(logits) -> np.ndarray:
    """Accept framework tensors or plain arrays from the model call."""
    if callable(getattr(logits, "detach", None)):
        logits = logits.detach().cpu().numpy()
    return np.asarray(logits)


class TorchWav2Vec2Backend(BackendAdapter):
    """Torchscript wav2vec2 CTC model loaded with ``torch.jit.load``.

    The model path comes from the constructor or the
    ``REPRO_WAV2VEC2_TORCH_MODEL`` environment variable; the callable
    must accept a ``(1, samples)`` float32 tensor and return
    ``(1, frames, vocab)`` logits (the shape of the stock exports).
    """

    backend_name = "wav2vec2-torch"
    requires = ("torch",)

    MODEL_ENV = "REPRO_WAV2VEC2_TORCH_MODEL"

    def __init__(self, model_path: str | None = None,
                 vocab: tuple[str, ...] = DEFAULT_CTC_VOCAB):
        self.model_path = model_path or os.environ.get(self.MODEL_ENV)
        self.vocab = tuple(vocab)
        super().__init__()

    @classmethod
    def _fingerprint_extra(cls) -> tuple[str, ...]:
        return (f"model={os.environ.get(cls.MODEL_ENV, '')}",)

    def _load(self):
        import torch
        if not self.model_path:
            raise ValueError(
                f"no model file configured for {self.backend_name}; pass "
                f"model_path= or set {self.MODEL_ENV}")
        return torch.jit.load(self.model_path)

    def _run(self, model, samples: np.ndarray) -> str:
        import torch
        batch = torch.from_numpy(
            np.ascontiguousarray(samples, dtype=np.float32)[None, :])
        with torch.no_grad():
            logits = model(batch)
        logits = _as_numpy(logits)
        return ctc_greedy_decode(logits[0], self.vocab)


class OnnxWav2Vec2Backend(BackendAdapter):
    """ONNX wav2vec2 CTC model run through ``onnxruntime`` on CPU.

    The model path comes from the constructor or the
    ``REPRO_WAV2VEC2_ONNX_MODEL`` environment variable; the graph's
    first input takes the ``(1, samples)`` float32 waveform and its
    first output is the ``(1, frames, vocab)`` logit tensor.
    """

    backend_name = "wav2vec2-onnx"
    requires = ("onnxruntime",)

    MODEL_ENV = "REPRO_WAV2VEC2_ONNX_MODEL"

    def __init__(self, model_path: str | None = None,
                 vocab: tuple[str, ...] = DEFAULT_CTC_VOCAB):
        self.model_path = model_path or os.environ.get(self.MODEL_ENV)
        self.vocab = tuple(vocab)
        super().__init__()

    @classmethod
    def _fingerprint_extra(cls) -> tuple[str, ...]:
        return (f"model={os.environ.get(cls.MODEL_ENV, '')}",)

    def _load(self):
        import onnxruntime
        if not self.model_path:
            raise ValueError(
                f"no model file configured for {self.backend_name}; pass "
                f"model_path= or set {self.MODEL_ENV}")
        return onnxruntime.InferenceSession(
            self.model_path, providers=["CPUExecutionProvider"])

    def _run(self, session, samples: np.ndarray) -> str:
        batch = np.ascontiguousarray(samples, dtype=np.float32)[None, :]
        input_name = session.get_inputs()[0].name
        outputs = session.run(None, {input_name: batch})
        logits = _as_numpy(outputs[0])
        return ctc_greedy_decode(logits[0], self.vocab)
