"""Vosk (Kaldi-based) offline recogniser binding.

Vosk wants 16-bit little-endian PCM chunks and returns JSON results, so
this adapter exercises the full dtype boundary: the library's float64
waveform is resampled, clipped and converted to int16 bytes before
feeding the recogniser.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.backends.base import BackendAdapter, float_to_int16_bytes


class VoskBackend(BackendAdapter):
    """Offline vosk model (``pip install vosk`` + a downloaded model dir).

    The model directory comes from the constructor or the
    ``REPRO_VOSK_MODEL`` environment variable; with neither set, vosk's
    own model auto-download path is used (``Model(lang="en-us")``).
    """

    backend_name = "vosk"
    requires = ("vosk",)

    MODEL_ENV = "REPRO_VOSK_MODEL"

    def __init__(self, model_path: str | None = None):
        self.model_path = model_path or os.environ.get(self.MODEL_ENV)
        super().__init__()

    @classmethod
    def _fingerprint_extra(cls) -> tuple[str, ...]:
        return (f"model={os.environ.get(cls.MODEL_ENV, '')}",)

    def _load(self):
        import vosk
        if self.model_path:
            return vosk.Model(self.model_path)
        return vosk.Model(lang="en-us")

    def _run(self, model, samples: np.ndarray) -> str:
        import vosk
        recognizer = vosk.KaldiRecognizer(model, self.expected_sample_rate)
        recognizer.AcceptWaveform(float_to_int16_bytes(samples))
        result = json.loads(recognizer.FinalResult())
        return result.get("text", "")
