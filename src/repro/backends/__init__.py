"""Optional ASR backends: real-model adapters and generated families.

Importing this package registers the shipped backends
(``wav2vec2-torch``, ``wav2vec2-onnx``, ``vosk``) into the open ASR
registry behind availability guards — the names always resolve, and
building one without its optional dependencies raises a
:class:`~repro.errors.BackendUnavailableError` carrying the install
hint.  The generated simulated family (``sim-00``, ``sim-01``, ...)
resolves through the same registry without registration (a dynamic name
family, like ``KAL-fs<N>``).

``repro/__init__.py`` imports this package, so the backends are
registered whenever the library is.
"""

from __future__ import annotations

from repro.backends.base import (
    DEFAULT_INSTALL_HINT,
    BackendAdapter,
    ctc_greedy_decode,
    float_to_int16_bytes,
    module_missing,
    resample,
)
from repro.backends.family import (
    FAMILY_SEED,
    FamilyMemberConfig,
    build_family_member,
    family_fingerprint,
    family_member_config,
    family_suite_names,
    is_family_name,
    simulated_family,
)
from repro.backends.registry import (
    BackendEntry,
    asr_fingerprint,
    backend_entry,
    backend_names,
    backend_status,
    describe_suite,
    register_backend,
    suite_warnings,
    unregister_backend,
)
from repro.backends.vosk import VoskBackend
from repro.backends.wav2vec2 import (
    DEFAULT_CTC_VOCAB,
    OnnxWav2Vec2Backend,
    TorchWav2Vec2Backend,
)

__all__ = [
    "BackendAdapter",
    "BackendEntry",
    "DEFAULT_CTC_VOCAB",
    "DEFAULT_INSTALL_HINT",
    "FAMILY_SEED",
    "FamilyMemberConfig",
    "OnnxWav2Vec2Backend",
    "TorchWav2Vec2Backend",
    "VoskBackend",
    "asr_fingerprint",
    "backend_entry",
    "backend_names",
    "backend_status",
    "build_family_member",
    "ctc_greedy_decode",
    "describe_suite",
    "family_fingerprint",
    "family_member_config",
    "family_suite_names",
    "float_to_int16_bytes",
    "is_family_name",
    "module_missing",
    "register_backend",
    "resample",
    "simulated_family",
    "suite_warnings",
    "unregister_backend",
]

# The shipped adapters.  Loaders are the adapter classes themselves, so
# the registry can reuse their fingerprint()/availability probes.
register_backend(
    "wav2vec2-torch", TorchWav2Vec2Backend,
    requires=TorchWav2Vec2Backend.requires,
    description="torchscript wav2vec2-style CTC model (torch.jit.load)")
register_backend(
    "wav2vec2-onnx", OnnxWav2Vec2Backend,
    requires=OnnxWav2Vec2Backend.requires,
    description="ONNX wav2vec2-style CTC model (onnxruntime, CPU)")
register_backend(
    "vosk", VoskBackend,
    requires=VoskBackend.requires,
    description="vosk/Kaldi offline recogniser binding")
