"""Backend registry: optional adapters joining the open ASR registry.

:func:`register_backend` records a backend's metadata (required modules,
install hint, description) and registers a guarded factory into the
existing :func:`repro.asr.registry.register_asr` plugin registry.  The
guard is the whole point: the *name* always resolves — suites, specs and
the CLI treat a registered backend like any other ASR — but *building*
it when its optional dependencies are absent raises
:class:`~repro.errors.BackendUnavailableError` with the install hint
instead of the generic unknown-name message.

This module is also the suite-attribution surface: :func:`asr_fingerprint`
gives every resolvable ASR name a stable version digest (backend model
fingerprints, family member config digests, built-in name digests) and
:func:`describe_suite` / :func:`suite_warnings` turn a
:class:`~repro.specs.SuiteSpec` into the composition records embedded in
experiment manifests and benchmark reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.asr.base import ASRSystem
from repro.asr.registry import asr_name_resolvable, register_asr, unregister_asr
from repro.backends.base import DEFAULT_INSTALL_HINT, module_missing
from repro.errors import BackendUnavailableError


@dataclass(frozen=True)
class BackendEntry:
    """One registered backend: how to build it and what it needs."""

    name: str
    loader: Callable[[], ASRSystem]
    requires: tuple[str, ...] = ()
    install_hint: str = DEFAULT_INSTALL_HINT
    description: str = ""

    def missing(self) -> tuple[str, ...]:
        """The required modules that cannot be imported right now."""
        return tuple(module for module in self.requires
                     if module_missing(module))

    def available(self) -> bool:
        return not self.missing()

    def fingerprint(self) -> str:
        """Model-version digest; ``"unavailable"`` when deps are missing."""
        probe = getattr(self.loader, "fingerprint", None)
        if callable(probe):
            return probe()
        if not self.available():
            return "unavailable"
        return _name_digest(f"backend|{self.name}")


_BACKENDS: dict[str, BackendEntry] = {}


def register_backend(name: str, loader: Callable[[], ASRSystem],
                     requires: Iterable[str] = (),
                     install_hint: str = DEFAULT_INSTALL_HINT,
                     description: str = "") -> BackendEntry:
    """Register an optional-dependency backend under ``name``.

    Args:
        name: short name the backend is addressed by (suites, specs,
            CLI), e.g. ``"wav2vec2-torch"``.
        loader: zero-argument callable returning the adapter instance.
            Passing a :class:`~repro.backends.base.BackendAdapter`
            subclass works (classes are callables) and additionally
            lets the registry reuse its ``fingerprint()`` probe.
        requires: importable module names the backend needs; when any is
            missing, building the name raises
            :class:`~repro.errors.BackendUnavailableError` carrying
            ``install_hint``, while the name itself still validates.
        install_hint: the command that makes the backend work.
        description: one line for ``repro backends`` listings.
    """
    entry = BackendEntry(name=name, loader=loader,
                         requires=tuple(requires),
                         install_hint=install_hint,
                         description=description)
    _BACKENDS[name] = entry

    def factory() -> ASRSystem:
        missing = entry.missing()
        if missing:
            raise BackendUnavailableError("ASR system", name, missing,
                                          entry.install_hint)
        return entry.loader()

    register_asr(name, factory)
    return entry


def unregister_backend(name: str) -> None:
    """Remove a backend and its ASR registration (no-op if absent)."""
    if _BACKENDS.pop(name, None) is not None:
        unregister_asr(name)


def backend_names() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_BACKENDS))


def backend_entry(name: str) -> BackendEntry | None:
    """The :class:`BackendEntry` registered under ``name``, if any."""
    return _BACKENDS.get(name)


def backend_status(name: str) -> dict:
    """Availability report of one backend, as a JSON-friendly dict."""
    entry = _BACKENDS[name]
    missing = entry.missing()
    return {
        "name": entry.name,
        "available": not missing,
        "missing": list(missing),
        "requires": list(entry.requires),
        "install_hint": entry.install_hint,
        "fingerprint": entry.fingerprint(),
        "description": entry.description,
    }


def _name_digest(payload: str) -> str:
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def asr_fingerprint(name: str) -> str:
    """Version digest of any resolvable ASR name.

    Registered backends report their model fingerprint, ``sim-<NN>``
    family members the digest of their generated configuration, and the
    deterministic built-in simulators a stable digest of their name
    (their "version" is the library itself).  Unresolvable names report
    ``"unknown"`` rather than raising — the fingerprint surface is used
    in reporting paths that must not fail.
    """
    entry = _BACKENDS.get(name)
    if entry is not None:
        return entry.fingerprint()
    from repro.backends.family import family_fingerprint, is_family_name
    if is_family_name(name):
        return family_fingerprint(name)
    if asr_name_resolvable(name):
        return _name_digest(f"builtin|{name}")
    return "unknown"


def _suite_member_names(suite) -> list[str]:
    return [suite.target.name] + [aux.name for aux in suite.auxiliaries]


def describe_suite(suite) -> dict:
    """Composition + fingerprints of a :class:`~repro.specs.SuiteSpec`.

    The record embedded in experiment-run manifests and the pipeline /
    serve benchmark reports so perf and accuracy numbers are
    attributable to the exact suite that produced them.
    """
    names = _suite_member_names(suite)
    return {
        "target": suite.target.name,
        "auxiliaries": [aux.name for aux in suite.auxiliaries],
        "fingerprints": {name: asr_fingerprint(name)
                         for name in dict.fromkeys(names)},
    }


def suite_warnings(suite) -> list[str]:
    """Human-readable warnings for suite members that will not build.

    A member naming a registered-but-unavailable backend yields a
    warning with its missing modules and install hint; config validation
    prints these without failing (the config is correct, the
    environment is incomplete).
    """
    warnings = []
    for name in dict.fromkeys(_suite_member_names(suite)):
        entry = _BACKENDS.get(name)
        if entry is None:
            continue
        missing = entry.missing()
        if missing:
            warnings.append(
                f"backend {name!r} is registered but unavailable "
                f"(missing: {', '.join(missing)}); install with: "
                f"{entry.install_hint}")
    return warnings
