"""Adapter bridge wrapping third-party speech models as ASR systems.

The library's detection pipeline only ever talks to the
:class:`~repro.asr.base.ASRSystem` interface, so any real recognizer —
a torchscript wav2vec2 export, an ONNX CTC model, a vosk/Kaldi binding —
can join a detection suite if something translates between the two
worlds.  :class:`BackendAdapter` is that translation layer.  It owns the
three concerns every adapter shares, so concrete backends implement only
``_load`` (import the third-party module and build the model) and
``_run`` (samples in, text out):

* **Lazy imports and the availability probe.**  Optional dependencies
  are never imported at module import time; :meth:`available` answers
  "would this backend work here?" without importing anything heavy, and
  :meth:`transcribe` raises
  :class:`~repro.errors.BackendUnavailableError` with an install hint
  when the answer is no.
* **The waveform boundary.**  The library's
  :class:`~repro.audio.waveform.Waveform` carries float64 samples at the
  project sample rate; real models want float32/int16 at their own rate.
  :meth:`prepare_samples` converts (linear resample + clip) so concrete
  adapters receive exactly what their model expects.
* **Cache identity.**  Transcription and feature caches key on the ASR's
  ``name`` (see :meth:`repro.pipeline.cache.TranscriptionCache.key_for`),
  so the adapter embeds a model-version fingerprint into ``name``.
  Upgrading torch or swapping the model file changes the fingerprint,
  which changes the cache key, which keeps stale transcriptions from
  leaking across model versions.

Adapters emit text-only transcriptions by default (the similarity
scorers consume only ``Transcription.text``); phonemes are derived from
the shared lexicon's grapheme-to-phoneme rules so downstream consumers
that want them still get a plausible sequence.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import sys

import numpy as np

from repro.asr.base import ASRSystem, Transcription
from repro.errors import BackendUnavailableError
from repro.text.lexicon import grapheme_to_phonemes
from repro.text.normalize import normalize_text

#: Install hint shown when a backend's optional dependencies are absent.
DEFAULT_INSTALL_HINT = "pip install repro[backends]"


def module_missing(module: str) -> bool:
    """Whether ``module`` is importable right now.

    Checks ``sys.modules`` first so test stubs injected there count as
    present even when they carry no ``__spec__`` (``find_spec`` raises
    ``ValueError`` for such modules).
    """
    if module in sys.modules:
        return sys.modules[module] is None
    try:
        return importlib.util.find_spec(module) is None
    except (ImportError, ValueError):
        return True


def resample(samples: np.ndarray, sample_rate: int,
             target_rate: int) -> np.ndarray:
    """Linear-interpolation resample of a mono float waveform.

    Quality-wise this is a stopgap (no anti-alias filter), but the
    adapters use it only to bridge rate mismatches at the model
    boundary, where the alternative is a hard error.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if sample_rate == target_rate or samples.size == 0:
        return samples
    duration = samples.size / float(sample_rate)
    n_target = max(1, int(round(duration * target_rate)))
    source_t = np.arange(samples.size) / float(sample_rate)
    target_t = np.arange(n_target) / float(target_rate)
    return np.interp(target_t, source_t, samples)


def float_to_int16_bytes(samples: np.ndarray) -> bytes:
    """Convert float samples in [-1, 1] to little-endian int16 PCM bytes."""
    clipped = np.clip(np.asarray(samples, dtype=np.float64), -1.0, 1.0)
    return (clipped * 32767.0).astype("<i2").tobytes()


def ctc_greedy_decode(logits: np.ndarray, vocab: tuple[str, ...],
                      blank: int = 0, word_delimiter: str = "|") -> str:
    """Greedy CTC decode of a ``(frames, vocab)`` logit matrix.

    Standard collapse rule: argmax per frame, merge repeats, drop the
    blank, then map indices through ``vocab``.  Tokens spelled like
    ``<pad>``/``<unk>`` are treated as non-emitting; ``word_delimiter``
    becomes a space.  Returns normalised lower-case text.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError(f"expected (frames, vocab) logits, got shape "
                         f"{logits.shape}")
    indices = np.argmax(logits, axis=-1)
    chars: list[str] = []
    previous = -1
    for index in indices:
        index = int(index)
        if index != previous and index != blank:
            token = vocab[index] if index < len(vocab) else ""
            if token == word_delimiter:
                chars.append(" ")
            elif not (token.startswith("<") and token.endswith(">")):
                chars.append(token)
        previous = index
    return normalize_text("".join(chars))


class BackendAdapter(ASRSystem):
    """Base class bridging a third-party speech model into the suite.

    Subclasses set :attr:`backend_name` and :attr:`requires`, then
    implement :meth:`_load` (import the dependency, construct the model)
    and :meth:`_run` (model + prepared samples -> raw text).  Everything
    else — availability probing, install-hint errors, sample-rate/dtype
    conversion, fingerprinted cache identity — is inherited.
    """

    #: Registry name of the backend, e.g. ``"wav2vec2-torch"``.
    backend_name: str = "backend"
    #: Importable module names the backend needs at transcribe time.
    requires: tuple[str, ...] = ()
    #: Command suggested when :attr:`requires` are missing.
    install_hint: str = DEFAULT_INSTALL_HINT
    #: Sample rate the wrapped model expects; inputs are resampled to it.
    expected_sample_rate: int = 16_000

    def __init__(self) -> None:
        self.short_name = self.backend_name
        # The fingerprint is part of ``name`` on purpose: the caches key
        # on it, so a new model version gets fresh cache entries.
        self.name = f"{self.backend_name} [{self.fingerprint()}]"
        self._model = None

    # ------------------------------------------------------------ probing
    @classmethod
    def missing_requirements(cls) -> tuple[str, ...]:
        """The subset of :attr:`requires` that cannot be imported."""
        return tuple(module for module in cls.requires
                     if module_missing(module))

    @classmethod
    def available(cls) -> bool:
        """Whether every optional dependency of the backend is importable."""
        return not cls.missing_requirements()

    @classmethod
    def fingerprint(cls) -> str:
        """Short digest of the backend's model version.

        Folds the backend name, each dependency's ``__version__`` and
        any subclass extras (model path, vocab, ...) into a 12-hex-char
        digest.  ``"unavailable"`` when dependencies are missing, so the
        probe itself never imports anything heavy.
        """
        if not cls.available():
            return "unavailable"
        digest = hashlib.sha1(cls.backend_name.encode("utf-8"))
        for module in cls.requires:
            version = getattr(importlib.import_module(module),
                              "__version__", "unknown")
            digest.update(f"|{module}={version}".encode("utf-8"))
        for extra in cls._fingerprint_extra():
            digest.update(f"|{extra}".encode("utf-8"))
        return digest.hexdigest()[:12]

    @classmethod
    def _fingerprint_extra(cls) -> tuple[str, ...]:
        """Subclass hook: extra strings folded into the fingerprint."""
        return ()

    # ------------------------------------------------------------ loading
    def _load(self):
        """Import the optional dependency and build the model object."""
        raise NotImplementedError

    def _run(self, model, samples: np.ndarray) -> str:
        """Run ``model`` on prepared samples; return the raw text."""
        raise NotImplementedError

    def _ensure_loaded(self):
        missing = self.missing_requirements()
        if missing:
            raise BackendUnavailableError("ASR system", self.short_name,
                                          missing, self.install_hint)
        if self._model is None:
            self._model = self._load()
        return self._model

    # ------------------------------------------------------------ boundary
    def prepare_samples(self, samples: np.ndarray,
                        sample_rate: int) -> np.ndarray:
        """Convert library samples to what the wrapped model expects."""
        prepared = resample(samples, sample_rate, self.expected_sample_rate)
        return np.clip(prepared, -1.0, 1.0)

    def _transcribe_samples(self, samples: np.ndarray,
                            sample_rate: int) -> Transcription:
        model = self._ensure_loaded()
        prepared = self.prepare_samples(samples, sample_rate)
        text = normalize_text(self._run(model, prepared))
        phonemes: tuple = ()
        for word in text.split():
            phonemes = phonemes + grapheme_to_phonemes(word)
        return Transcription(
            text=text, phonemes=phonemes, asr_name=self.name,
            extra={"backend": self.backend_name,
                   "fingerprint": self.fingerprint()})
