"""Audio dataset construction.

Builds the benign, white-box AE, black-box AE and non-targeted AE datasets
used throughout the evaluation.  Every AE is verified to fool the target
model (the paper verifies the same property); failed attack attempts are
retried with different hosts before being dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asr.registry import build_asr, get_shared_lexicon
from repro.attacks.blackbox import BlackBoxGeneticAttack
from repro.attacks.nontargeted import make_nontargeted_example
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.audio.synthesis import SpeechSynthesizer
from repro.audio.waveform import Waveform
from repro.config import DEFAULT_SEED, ReproScale, get_scale
from repro.text.corpus import (
    attack_command_corpus,
    commonvoice_like_corpus,
    librispeech_like_corpus,
)


@dataclass(frozen=True)
class LabeledAudio:
    """An audio clip plus its detection label (0 benign, 1 adversarial)."""

    waveform: Waveform
    label: int

    @property
    def kind(self) -> str:
        """The waveform's label string ("benign", "whitebox-ae", ...)."""
        return self.waveform.label


@dataclass
class DatasetBundle:
    """The full collection of datasets for one evaluation run (Table II)."""

    benign: list[LabeledAudio] = field(default_factory=list)
    whitebox: list[LabeledAudio] = field(default_factory=list)
    blackbox: list[LabeledAudio] = field(default_factory=list)
    nontargeted: list[LabeledAudio] = field(default_factory=list)

    @property
    def adversarial(self) -> list[LabeledAudio]:
        """White-box plus black-box AEs (the paper's "AE dataset")."""
        return self.whitebox + self.blackbox

    @property
    def all_samples(self) -> list[LabeledAudio]:
        """Benign plus adversarial samples (non-targeted AEs excluded)."""
        return self.benign + self.adversarial

    def summary(self) -> dict[str, int]:
        """Dataset sizes, mirroring Table II."""
        return {
            "benign": len(self.benign),
            "whitebox": len(self.whitebox),
            "blackbox": len(self.blackbox),
            "nontargeted": len(self.nontargeted),
        }


def _benign_synthesizer(seed: int) -> SpeechSynthesizer:
    return SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=seed)


def build_benign_dataset(n_samples: int, seed: int = DEFAULT_SEED) -> list[LabeledAudio]:
    """Benign audio: sentences drawn from the LibriSpeech-like corpus."""
    rng = np.random.default_rng(seed)
    synthesizer = _benign_synthesizer(seed)
    corpus = librispeech_like_corpus()
    samples = []
    for sentence in corpus.sample(n_samples, rng):
        waveform = synthesizer.synthesize(sentence, rng=rng)
        samples.append(LabeledAudio(waveform=waveform, label=0))
    return samples


def build_whitebox_dataset(n_samples: int, seed: int = DEFAULT_SEED,
                           max_attempts_per_ae: int = 3) -> list[LabeledAudio]:
    """White-box AEs crafted against DS0, each verified to fool DS0."""
    rng = np.random.default_rng(seed + 1)
    synthesizer = _benign_synthesizer(seed + 1)
    target_asr = build_asr("DS0")
    attack = WhiteBoxCarliniAttack(target_asr)
    hosts = librispeech_like_corpus()
    commands = attack_command_corpus()
    samples: list[LabeledAudio] = []
    while len(samples) < n_samples:
        command = commands.sample_one(rng)
        result = None
        for _ in range(max_attempts_per_ae):
            host_text = hosts.sample_one(rng)
            host = synthesizer.synthesize(host_text, rng=rng)
            result = attack.run(host, command)
            if result.success:
                break
        if result is not None and result.success:
            samples.append(LabeledAudio(waveform=result.adversarial, label=1))
        else:
            # Keep the dataset moving even if a command proves too hard.
            continue
    return samples


def build_blackbox_dataset(n_samples: int, seed: int = DEFAULT_SEED,
                           max_attempts_per_ae: int = 3) -> list[LabeledAudio]:
    """Black-box AEs (two-word payloads) crafted against DS0."""
    rng = np.random.default_rng(seed + 2)
    synthesizer = _benign_synthesizer(seed + 2)
    target_asr = build_asr("DS0")
    hosts = commonvoice_like_corpus()
    commands = attack_command_corpus(two_word_only=True)
    samples: list[LabeledAudio] = []
    attempt_seed = seed
    while len(samples) < n_samples:
        command = commands.sample_one(rng)
        result = None
        for _ in range(max_attempts_per_ae):
            attempt_seed += 1
            attack = BlackBoxGeneticAttack(target_asr, seed=attempt_seed)
            host_text = hosts.sample_one(rng)
            host = synthesizer.synthesize(host_text, rng=rng)
            result = attack.run(host, command)
            if result.success:
                break
        if result is not None and result.success:
            samples.append(LabeledAudio(waveform=result.adversarial, label=1))
        else:
            continue
    return samples


def build_nontargeted_dataset(n_samples: int, seed: int = DEFAULT_SEED,
                              snr_db: float = -6.0) -> list[LabeledAudio]:
    """Non-targeted AEs: CommonVoice-like audio with −6 dB noise."""
    rng = np.random.default_rng(seed + 3)
    synthesizer = _benign_synthesizer(seed + 3)
    target_asr = build_asr("DS0")
    corpus = commonvoice_like_corpus()
    samples = []
    for sentence in corpus.sample(n_samples, rng):
        host = synthesizer.synthesize(sentence, rng=rng)
        noisy = make_nontargeted_example(host, rng, snr_db=snr_db,
                                         target_asr=target_asr)
        samples.append(LabeledAudio(waveform=noisy, label=1))
    return samples


def build_bundle(scale: ReproScale, seed: int = DEFAULT_SEED) -> DatasetBundle:
    """Build every dataset of Table II at the requested scale."""
    return DatasetBundle(
        benign=build_benign_dataset(scale.n_benign, seed),
        whitebox=build_whitebox_dataset(scale.n_whitebox, seed),
        blackbox=build_blackbox_dataset(scale.n_blackbox, seed),
        nontargeted=build_nontargeted_dataset(scale.n_nontargeted, seed),
    )


_BUNDLE_CACHE: dict[tuple[str, int], DatasetBundle] = {}


def load_standard_bundle(scale: ReproScale | str | None = None,
                         seed: int = DEFAULT_SEED) -> DatasetBundle:
    """Build (or fetch the in-process cached) dataset bundle for a scale."""
    if scale is None or isinstance(scale, str):
        scale = get_scale(scale)
    key = (scale.name, seed)
    if key not in _BUNDLE_CACHE:
        _BUNDLE_CACHE[key] = build_bundle(scale, seed)
    return _BUNDLE_CACHE[key]
