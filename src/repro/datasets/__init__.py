"""Dataset builders (Table II of the paper).

The evaluation uses a benign dataset (LibriSpeech-like sentences), a
white-box AE dataset, a black-box AE dataset and a small non-targeted AE
dataset.  Generating adversarial audio is expensive, so the builders cache
their outputs on disk (``.repro_cache``) keyed by the scale preset.
"""

from repro.datasets.builder import (
    DatasetBundle,
    LabeledAudio,
    build_benign_dataset,
    build_blackbox_dataset,
    build_nontargeted_dataset,
    build_whitebox_dataset,
    load_standard_bundle,
)
from repro.datasets.scores import ScoredDataset, compute_scored_dataset, load_scored_dataset

__all__ = [
    "DatasetBundle",
    "LabeledAudio",
    "build_benign_dataset",
    "build_whitebox_dataset",
    "build_blackbox_dataset",
    "build_nontargeted_dataset",
    "load_standard_bundle",
    "ScoredDataset",
    "compute_scored_dataset",
    "load_scored_dataset",
]
