"""Pre-computed similarity-score datasets with disk caching.

Every evaluation table is a function of the similarity-score feature
vectors of the benign and adversarial samples under the four ASRs.  Those
scores are expensive to compute (each sample is transcribed by every ASR),
so this module computes them once per scale preset and caches the result
both in memory and on disk under :func:`repro.config.cache_dir`.

The cached artefact stores, for every sample: its label, its attack kind
("benign", "whitebox-ae", "blackbox-ae", "nontargeted-ae"), the target
ASR's transcription and each auxiliary ASR's transcription — enough to
recompute the score vectors under any similarity method without touching
audio again (which is exactly what the Table III experiment needs).

This dataset-level cache sits above the per-transcription content-hash
cache in :mod:`repro.pipeline.cache`: computing a scored dataset routes
through a :class:`~repro.pipeline.engine.TranscriptionEngine`, which both
parallelises the ASR fan-out and leaves the shared transcription cache
warm for any experiment that replays the same clips afterwards.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.asr.registry import default_suite_names
from repro.config import DEFAULT_SEED, ReproScale, cache_dir, get_scale
from repro.datasets.builder import DatasetBundle, load_standard_bundle
from repro.pipeline.engine import TranscriptionEngine
from repro.similarity.engine import SimilarityEngine
from repro.specs import SuiteSpec
from repro.store import atomic_write_text

#: Target and auxiliary order of the *default* scored dataset (the
#: paper's suite, snapshotted from the ASR registry at import).  These
#: are what the cached artefacts under ``.repro_cache/`` actually
#: contain — a plugin registered later can never grow a column in them.
SCORED_TARGET: str = default_suite_names()[0]
AUXILIARY_ORDER: tuple[str, ...] = default_suite_names()[1:]


@dataclass
class ScoredDataset:
    """Transcriptions and similarity scores for one dataset bundle."""

    #: per-sample label: 0 benign, 1 adversarial.
    labels: np.ndarray
    #: per-sample attack kind string.
    kinds: list[str]
    #: per-sample target-model transcription.
    target_texts: list[str]
    #: per-sample auxiliary transcriptions, keyed by auxiliary short name.
    auxiliary_texts: dict[str, list[str]]
    #: similarity method used for :attr:`scores`.
    method: str = "PE_JaroWinkler"
    #: per-sample score vectors in :attr:`auxiliary_order`, shape (n, k).
    scores: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))
    #: column order of :attr:`scores` (defaults to the paper's suite;
    #: datasets computed for a custom :class:`SuiteSpec` carry their own).
    auxiliary_order: tuple[str, ...] = field(
        default_factory=lambda: AUXILIARY_ORDER)

    # ------------------------------------------------------------ selection
    def __len__(self) -> int:
        return int(self.labels.shape[0])

    def mask_for(self, kinds: tuple[str, ...] | None = None) -> np.ndarray:
        """Boolean mask selecting samples of the given kinds (None = all)."""
        if kinds is None:
            return np.ones(len(self), dtype=bool)
        kind_array = np.array(self.kinds)
        return np.isin(kind_array, kinds)

    def features_for(self, auxiliaries: tuple[str, ...],
                     kinds: tuple[str, ...] | None = None,
                     method: str | None = None,
                     scoring: SimilarityEngine | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Score matrix and labels for a subsystem and sample subset.

        Args:
            auxiliaries: auxiliary short names defining the subsystem, e.g.
                ``("DS1",)`` for DS0+{DS1} or ``("DS1", "GCS", "AT")``.
            kinds: restrict to these attack kinds (None keeps every sample).
            method: similarity method; defaults to the dataset's method and
                recomputes scores from transcriptions when different.
            scoring: engine for the recompute path (honours the caller's
                backend and cache policy); defaults to a fresh engine for
                ``method`` with the shared pair-score cache.
        """
        mask = self.mask_for(kinds)
        labels = self.labels[mask]
        for name in auxiliaries:
            if name not in self.auxiliary_order:
                from repro.errors import UnknownComponentError
                raise UnknownComponentError("scored-dataset auxiliary", name,
                                            self.auxiliary_order)
        if method is None or method == self.method:
            columns = [self.auxiliary_order.index(name)
                       for name in auxiliaries]
            return self.scores[mask][:, columns], labels
        # Recomputing under another method is one batch engine call: the
        # pair-score cache makes Table III's systems (which share
        # auxiliary columns) score each distinct pair exactly once.
        engine = scoring if scoring is not None else SimilarityEngine(scorer=method)
        indices = np.where(mask)[0]
        pairs = [(self.target_texts[index], self.auxiliary_texts[name][index])
                 for index in indices for name in auxiliaries]
        features = engine.score_pairs(pairs).reshape(indices.shape[0],
                                                     len(auxiliaries))
        return features, labels

    def benign_features(self, auxiliaries: tuple[str, ...] = AUXILIARY_ORDER,
                        method: str | None = None) -> np.ndarray:
        """Score matrix of the benign samples only."""
        return self.features_for(auxiliaries, ("benign",), method)[0]

    def adversarial_features(self, auxiliaries: tuple[str, ...] = AUXILIARY_ORDER,
                             kinds: tuple[str, ...] = ("whitebox-ae", "blackbox-ae"),
                             method: str | None = None) -> np.ndarray:
        """Score matrix of the (real audio) adversarial samples."""
        return self.features_for(auxiliaries, kinds, method)[0]


# --------------------------------------------------------------- computation


def compute_scored_dataset(bundle: DatasetBundle,
                           method: str = "PE_JaroWinkler",
                           include_nontargeted: bool = True,
                           workers: int | None = None,
                           suite: SuiteSpec | None = None) -> ScoredDataset:
    """Transcribe every sample with a full ASR suite and compute scores.

    The suite defaults to the paper's (target ``DS0``, auxiliaries in
    :data:`AUXILIARY_ORDER`); pass a
    :class:`~repro.specs.SuiteSpec` to score any other suite — plugins
    and transformed views included — keyed by each member's short name.

    Recognition fans out across a
    :class:`~repro.pipeline.engine.TranscriptionEngine` worker pool and
    populates the process-wide transcription cache, so later experiments
    (overhead, ablations, examples) that replay the same clips never
    re-decode them.  Pass ``workers=0`` for the sequential path.
    """
    from repro.build import build_suite
    target_asr, auxiliaries = build_suite(
        suite if suite is not None else SuiteSpec())
    aux_names = [asr.short_name for asr in auxiliaries]
    scoring = SimilarityEngine(scorer=method)

    samples = list(bundle.all_samples)
    if include_nontargeted:
        samples += list(bundle.nontargeted)

    labels = np.array([sample.label for sample in samples], dtype=int)
    kinds = [sample.kind for sample in samples]
    with TranscriptionEngine(target_asr, auxiliaries, workers=workers) as engine:
        suites = engine.transcribe_batch([sample.waveform for sample in samples])
    target_texts = [suite_t.target.text for suite_t in suites]
    auxiliary_texts = {name: [suite_t.auxiliaries[name].text
                              for suite_t in suites]
                       for name in aux_names}
    scores = (scoring.score_suites(suites, auxiliaries)
              if samples else np.empty((0, len(aux_names))))
    return ScoredDataset(labels=labels, kinds=kinds, target_texts=target_texts,
                         auxiliary_texts=auxiliary_texts, method=method,
                         scores=scores, auxiliary_order=tuple(aux_names))


# -------------------------------------------------------------- disk caching


def _suite_signature(method: str, auxiliary_order: tuple[str, ...]) -> str:
    """Short digest of what a scored payload actually depends on.

    The cache key used to be ``(scale, seed)`` only, but the stored
    transcriptions/scores are a function of the similarity *method* and
    the suite composition too — two datasets computed for different
    methods or suites silently shared one file.  The digest folds both
    (plus the target, for completeness) into the filename, so a file
    written for any other combination is simply a different name — i.e.
    a miss — rather than a wrong hit.
    """
    payload = json.dumps([method, SCORED_TARGET, list(auxiliary_order)],
                         separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:10]


def _cache_path(scale_name: str, seed: int,
                method: str = "PE_JaroWinkler",
                auxiliary_order: tuple[str, ...] = AUXILIARY_ORDER) -> str:
    signature = _suite_signature(method, auxiliary_order)
    return os.path.join(cache_dir(),
                        f"scored_{scale_name}_{seed}_{signature}.json")


def _to_json(dataset: ScoredDataset) -> dict:
    return {
        "labels": dataset.labels.tolist(),
        "kinds": dataset.kinds,
        "target_texts": dataset.target_texts,
        "auxiliary_texts": dataset.auxiliary_texts,
        "method": dataset.method,
        "scores": dataset.scores.tolist(),
        "auxiliary_order": list(dataset.auxiliary_order),
    }


def _from_json(payload: dict) -> ScoredDataset:
    return ScoredDataset(
        labels=np.array(payload["labels"], dtype=int),
        kinds=list(payload["kinds"]),
        target_texts=list(payload["target_texts"]),
        auxiliary_texts={k: list(v) for k, v in payload["auxiliary_texts"].items()},
        method=payload["method"],
        scores=np.array(payload["scores"], dtype=np.float64),
        # Cache files written before auxiliary_order existed hold the
        # paper's suite.
        auxiliary_order=tuple(payload.get("auxiliary_order",
                                          AUXILIARY_ORDER)),
    )


_SCORED_CACHE: dict[tuple[str, int, str], ScoredDataset] = {}


def _read_cached_dataset(path: str, method: str) -> ScoredDataset | None:
    """Parse one disk-cache file; anything unexpected is a miss.

    A torn or corrupt file (the write is atomic now, but files from
    older versions may predate that) and a payload whose method or
    suite differs from what the filename promises are both treated as
    misses — the dataset is recomputed and the file overwritten.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        dataset = _from_json(payload)
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if dataset.method != method or dataset.auxiliary_order != AUXILIARY_ORDER:
        return None
    return dataset


def store_scored_dataset(dataset: ScoredDataset,
                         scale: ReproScale | str | None = None,
                         seed: int = DEFAULT_SEED) -> str:
    """Persist a computed dataset into the disk cache (atomic write).

    Returns the cache path.  Used by :func:`load_scored_dataset` and by
    the sharded ``scored_dataset`` experiment, whose reduce step
    installs its reassembled result here so every later experiment
    starts warm.
    """
    if scale is None or isinstance(scale, str):
        scale = get_scale(scale)
    path = _cache_path(scale.name, seed, dataset.method,
                       dataset.auxiliary_order)
    atomic_write_text(path, json.dumps(_to_json(dataset)))
    _SCORED_CACHE[(scale.name, seed, dataset.method)] = dataset
    return path


def load_scored_dataset(scale: ReproScale | str | None = None,
                        seed: int = DEFAULT_SEED,
                        use_disk_cache: bool = True,
                        method: str = "PE_JaroWinkler") -> ScoredDataset:
    """Load (from cache) or compute the scored dataset for a scale preset."""
    if scale is None or isinstance(scale, str):
        scale = get_scale(scale)
    key = (scale.name, seed, method)
    if key in _SCORED_CACHE:
        return _SCORED_CACHE[key]

    path = _cache_path(scale.name, seed, method)
    if use_disk_cache:
        dataset = _read_cached_dataset(path, method)
        if dataset is not None:
            _SCORED_CACHE[key] = dataset
            return dataset

    bundle = load_standard_bundle(scale, seed)
    dataset = compute_scored_dataset(bundle, method=method)
    if use_disk_cache:
        store_scored_dataset(dataset, scale, seed)
    _SCORED_CACHE[key] = dataset
    return dataset
