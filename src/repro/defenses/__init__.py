"""Transformation-based defenses (WaveGuard-style auxiliary versions).

Public surface:

* :mod:`repro.defenses.transforms` — the composable :class:`Transform`
  API (quantisation, down/up-sampling, filtering, noise flooding,
  clipping), spec parsing and the default ensemble.
* :mod:`repro.defenses.ensemble` — :class:`TransformedASR` (a transform
  wrapped as an ASR "version") and :class:`TransformEnsembleDetector`
  (drop-in :class:`~repro.core.detector.MVPEarsDetector` whose
  auxiliaries are transformed views of the target model).
"""

from repro.defenses.ensemble import (
    TransformedASR,
    TransformEnsembleDetector,
    transformed_suite,
)
from repro.defenses.transforms import (
    AmplitudeClip,
    BitDepthQuantize,
    Compose,
    DownUpsample,
    LowPassFilter,
    MedianFilter,
    NoiseFlood,
    Transform,
    default_transform_suite,
    parse_transform,
    parse_transforms,
)

__all__ = [
    "AmplitudeClip",
    "BitDepthQuantize",
    "Compose",
    "DownUpsample",
    "LowPassFilter",
    "MedianFilter",
    "NoiseFlood",
    "Transform",
    "TransformEnsembleDetector",
    "TransformedASR",
    "default_transform_suite",
    "parse_transform",
    "parse_transforms",
    "transformed_suite",
]
