"""Transformation-ensemble detection.

The paper detects AEs by disagreement between *different ASR models*;
WaveGuard shows the same disagreement signal appears between the target
model's view of the original audio and its view of cheaply *transformed*
variants.  This module makes transformations first-class members of the
multiversion suite:

* :class:`TransformedASR` adapts a ``(transform, ASR)`` pair into an
  ordinary :class:`~repro.asr.base.ASRSystem`, so the transcription
  engine fans it out in parallel, the content-hash cache stores its
  results, and the pipeline/serving layers need no changes at all.
* :class:`TransformEnsembleDetector` is an
  :class:`~repro.core.detector.MVPEarsDetector` whose auxiliaries are
  transformed versions of the *target* model — optionally alongside real
  auxiliary ASRs (the "combined" system).

Because every transform is deterministic and every score is a pure
function of transcription texts, the similarity-score vectors are
bit-identical whether a clip is detected sequentially, in a pipeline
batch, through the micro-batcher or as a stream window.
"""

from __future__ import annotations

import numpy as np

from repro.asr.base import ASRSystem, Transcription
from repro.core.detector import MVPEarsDetector
from repro.defenses.transforms import Transform, default_transform_suite
from repro.ml.base import BinaryClassifier
from repro.pipeline.cache import TranscriptionCache
from repro.pipeline.engine import TranscriptionEngine
from repro.similarity.engine import ScoringBackend, SimilarityEngine
from repro.similarity.scorer import SimilarityScorer


class TransformedASR(ASRSystem):
    """An ASR "version" that hears the audio through a transform.

    ``transcribe`` applies the transform and delegates to the base
    system; reported timing covers transform plus decode, so overhead
    accounting in the engine stays honest.  ``name``/``short_name``
    embed the transform's parameter-bearing name, keeping cache keys
    distinct per configuration (see
    :meth:`~repro.pipeline.cache.TranscriptionCache.key_for`).
    """

    def __init__(self, base_asr: ASRSystem, transform: Transform):
        self.base_asr = base_asr
        self.transform = transform
        self.name = f"{base_asr.name} via {transform.name}"
        self.short_name = f"{base_asr.short_name}~{transform.name}"
        self.is_cloud = base_asr.is_cloud

    def _transcribe_samples(self, samples: np.ndarray,
                            sample_rate: int) -> Transcription:
        transformed = np.clip(
            self.transform.apply_samples(np.asarray(samples, dtype=np.float64),
                                         sample_rate),
            -1.0, 1.0)
        return self.base_asr._transcribe_samples(transformed, sample_rate)


def transformed_suite(base_asr: ASRSystem,
                      transforms: list[Transform] | None = None) -> list[TransformedASR]:
    """Wrap ``base_asr`` once per transform (default: the standard suite)."""
    transforms = list(transforms) if transforms is not None else \
        default_transform_suite()
    return [TransformedASR(base_asr, transform) for transform in transforms]


class TransformEnsembleDetector(MVPEarsDetector):
    """MVP-EARS detection with transformations as auxiliary versions.

    The auxiliary suite is ``asr_auxiliaries`` (real diverse models —
    empty for the pure transform ensemble) followed by one
    :class:`TransformedASR` per transform.  Everything else — parallel
    fan-out, caching, batched pipeline, streaming, micro-batching,
    classifier training — is inherited unchanged from
    :class:`~repro.core.detector.MVPEarsDetector`.

    Args:
        target_asr: the model under protection (also the model that
            hears every transformed variant).
        transforms: the transformation ensemble (default:
            :func:`~repro.defenses.transforms.default_transform_suite`).
        asr_auxiliaries: real auxiliary ASRs to keep alongside the
            transforms; pass the paper's suite for the combined system.
        classifier / scorer / workers / engine / cache / scoring: as for
            :class:`~repro.core.detector.MVPEarsDetector`.  The shared
            pair-score cache matters doubly here: transform auxiliaries
            often agree with the target verbatim on benign audio, so
            their suite pairs collapse to a handful of cache entries.
    """

    def __init__(self, target_asr: ASRSystem,
                 transforms: list[Transform] | None = None,
                 asr_auxiliaries: list[ASRSystem] | None = None,
                 classifier: BinaryClassifier | str = "SVM",
                 scorer: SimilarityScorer | str | None = None,
                 workers: int | None = None,
                 engine: TranscriptionEngine | None = None,
                 cache: TranscriptionCache | bool | None = True,
                 scoring: SimilarityEngine | ScoringBackend | str | None = None,
                 feature_engine=None):
        transforms = list(transforms) if transforms is not None else \
            default_transform_suite()
        if not transforms and not asr_auxiliaries:
            raise ValueError("need at least one transform or ASR auxiliary")
        auxiliaries: list[ASRSystem] = list(asr_auxiliaries or [])
        auxiliaries.extend(TransformedASR(target_asr, t) for t in transforms)
        super().__init__(target_asr, auxiliaries, classifier=classifier,
                         scorer=scorer, workers=workers, engine=engine,
                         cache=cache, scoring=scoring,
                         feature_engine=feature_engine)
        self.transforms = transforms
        self.asr_auxiliaries = list(asr_auxiliaries or [])

    # ----------------------------------------------------------- construction
    @classmethod
    def from_spec(cls, spec, fit: bool = True) -> "TransformEnsembleDetector":
        """Build a transform ensemble from a declarative spec.

        ``spec`` is anything :func:`repro.build.resolve_spec` accepts.
        The suite must have the canonical ensemble shape — plain
        auxiliaries followed by transformed views of the target (what
        ``DetectorSpec.default(defense="transform"|"combined")``
        produces); anything else is refused up front, before any
        dataset or training work, since :func:`repro.build.build` would
        return a plain :class:`MVPEarsDetector` for it.
        """
        from repro.build import build, is_canonical_ensemble, resolve_spec
        from repro.specs import InvalidSpecError
        spec = resolve_spec(spec)
        if not is_canonical_ensemble(spec.suite):
            raise InvalidSpecError(
                ["suite.auxiliaries: not a transform-ensemble shape (expected "
                 "plain auxiliaries followed by transformed views of the "
                 "target); use repro.build() for arbitrary suites"])
        detector = build(spec, fit=fit)
        assert isinstance(detector, cls)
        return detector

    # ---------------------------------------------------------- description
    @property
    def transform_names(self) -> tuple[str, ...]:
        """Names of the transformation ensemble, in auxiliary order."""
        return tuple(t.name for t in self.transforms)

    # ------------------------------------------------------------- training
    def fit_bundle(self, bundle) -> "TransformEnsembleDetector":
        """Fit the classifier on a :class:`DatasetBundle`'s audio.

        Transform-disagreement scores cannot come from the pre-computed
        multi-ASR scored dataset, so training extracts fresh features
        from the bundle's benign + adversarial audio (transcriptions are
        served from the engine cache on repeat runs).
        """
        samples = bundle.all_samples
        audios = [sample.waveform for sample in samples]
        labels = np.array([sample.label for sample in samples], dtype=int)
        return self.fit(audios, labels)
