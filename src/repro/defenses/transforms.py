"""Composable audio input transformations.

WaveGuard (PAPERS.md) observes that cheap, lossy input transformations —
quantisation, down/up-sampling, filtering, noise flooding — preserve what
a human (and a robust ASR) hears while disrupting the carefully balanced
perturbation an adversarial example rides on.  Each transformation
therefore acts like an independent "version" of the target ASR: run the
*same* model over a transformed variant and a benign clip transcribes to
(almost) the same text, while an AE's hidden command falls apart.

Every transform here is a pure, deterministic function of the input
samples: the same audio always maps to the same transformed audio, no
matter when or where it is applied.  :class:`NoiseFlood` keeps that
property by seeding its generator from a content hash of the samples.
Determinism is what lets the transcription cache treat a transformed
variant as ordinary content, and what makes sequential, batched and
streamed detection paths produce bit-identical scores.

Transforms are built directly (``BitDepthQuantize(bits=8)``), parsed
from compact specs (``parse_transform("quantize:8")``), or taken from
:func:`default_transform_suite` — the ensemble used by the CLI's
``--defense transform`` mode.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod

import numpy as np

from repro.audio.waveform import Waveform
from repro.errors import UnknownComponentError


class Transform(ABC):
    """A deterministic audio-to-audio transformation.

    Subclasses implement :meth:`apply_samples` on raw sample arrays; the
    public :meth:`__call__` operates on :class:`Waveform` values,
    preserving rate/text/label and recording the transform name in the
    metadata.  ``name`` must encode every parameter, because it becomes
    part of transcription cache keys (two differently-configured
    transforms must never share a cache entry).
    """

    #: Unique, parameter-bearing identifier, e.g. ``"quantize-8"``.
    name: str = "transform"

    #: Compact parse spec that reconstructs this transform via
    #: :func:`parse_transform` (e.g. ``"quantize:8"``), or ``None`` when
    #: the configuration has no spec-syntax representation.  This is what
    #: a :class:`~repro.specs.TransformSpec` serialises.
    spec: str | None = None

    @abstractmethod
    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        """Transform raw samples (implemented by subclasses)."""

    def __call__(self, audio: Waveform) -> Waveform:
        if not isinstance(audio, Waveform):
            raise TypeError("transform expects a Waveform")
        transformed = self.apply_samples(
            np.asarray(audio.samples, dtype=np.float64), audio.sample_rate)
        return audio.with_samples(np.clip(transformed, -1.0, 1.0),
                                  transform=self.name)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return f"<{type(self).__name__} {self.name!r}>"


class BitDepthQuantize(Transform):
    """Quantise samples to ``bits`` of depth and dequantise back.

    Adversarial perturbations typically live in the least significant
    bits of the signal; rounding to a coarse grid erases them while
    leaving speech intelligible down to ~6 bits.
    """

    def __init__(self, bits: int = 8):
        if not 2 <= bits <= 16:
            raise ValueError("bits must be in [2, 16]")
        self.bits = bits
        self.name = f"quantize-{bits}"
        self.spec = f"quantize:{bits}"

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        levels = float(2 ** (self.bits - 1))
        return np.round(samples * levels) / levels


class DownUpsample(Transform):
    """Decimate by ``factor`` and linearly interpolate back to full rate.

    The round trip discards energy above ``sample_rate / (2 * factor)``
    and resamples the perturbation onto a coarser time grid, both of
    which an AE's fragile alignment rarely survives.  Output length and
    sample rate equal the input's.
    """

    def __init__(self, factor: int = 2):
        if factor < 2:
            raise ValueError("factor must be >= 2")
        self.factor = factor
        self.name = f"resample-{factor}"
        self.spec = f"resample:{factor}"

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        n = samples.shape[0]
        if n < 2:
            return samples.copy()
        decimated_t = np.arange(0, n, self.factor, dtype=np.float64)
        full_t = np.arange(n, dtype=np.float64)
        return np.interp(full_t, decimated_t, samples[::self.factor])


class LowPassFilter(Transform):
    """Zero every spectral component above ``cutoff_hz`` (FFT brick wall)."""

    def __init__(self, cutoff_hz: float = 3000.0):
        if cutoff_hz <= 0:
            raise ValueError("cutoff_hz must be positive")
        self.cutoff_hz = float(cutoff_hz)
        self.name = f"lowpass-{self.cutoff_hz:g}"
        self.spec = f"lowpass:{self.cutoff_hz:g}"

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        n = samples.shape[0]
        if n == 0:
            return samples.copy()
        spectrum = np.fft.rfft(samples)
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
        spectrum[freqs > self.cutoff_hz] = 0.0
        return np.fft.irfft(spectrum, n=n)


class MedianFilter(Transform):
    """Sliding-window median smoothing (odd ``width``, edges reflected).

    The classic impulsive-noise remover: isolated adversarial spikes are
    replaced by the local median while broadband speech structure
    survives.
    """

    def __init__(self, width: int = 5):
        if width < 3 or width % 2 == 0:
            raise ValueError("width must be an odd integer >= 3")
        self.width = width
        self.name = f"median-{width}"
        self.spec = f"median:{width}"

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        n = samples.shape[0]
        if n == 0:
            return samples.copy()
        half = self.width // 2
        padded = np.pad(samples, half, mode="reflect") if n > half else \
            np.pad(samples, half, mode="edge")
        windows = np.lib.stride_tricks.sliding_window_view(padded, self.width)
        return np.median(windows, axis=1)


class NoiseFlood(Transform):
    """Add white noise at a fixed SNR, seeded by the audio content.

    Flooding drowns perturbations that sit near the noise floor.  The
    generator is seeded from a content hash of the samples (plus the
    configured ``seed``), so the same clip always receives the same
    noise — keeping the transform cacheable and path-independent.
    """

    def __init__(self, snr_db: float = 20.0, seed: int = 0):
        self.snr_db = float(snr_db)
        self.seed = int(seed)
        self.name = (f"noise-{snr_db:g}" if self.seed == 0
                     else f"noise-{snr_db:g}-s{self.seed}")
        # A non-default seed has no compact-spec syntax; such a transform
        # works everywhere except inside a serialisable spec tree.
        self.spec = f"noise:{snr_db:g}" if self.seed == 0 else None

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        n = samples.shape[0]
        if n == 0:
            return samples.copy()
        rms = float(np.sqrt(np.mean(samples ** 2)))
        if rms == 0.0:
            return samples.copy()
        content = zlib.crc32(np.ascontiguousarray(samples).tobytes())
        rng = np.random.default_rng((self.seed, content))
        noise_rms = rms / (10.0 ** (self.snr_db / 20.0))
        return samples + noise_rms * rng.standard_normal(n)


class AmplitudeClip(Transform):
    """Clip samples to ``fraction`` of the clip's own peak amplitude.

    Hard-limiting the loudest excursions flattens exactly the regions an
    attack exploits to hide high-energy perturbation bursts.
    """

    def __init__(self, fraction: float = 0.5):
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        self.fraction = fraction
        self.name = f"clip-{fraction:g}"
        self.spec = f"clip:{fraction:g}"

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        peak = float(np.max(np.abs(samples))) if samples.size else 0.0
        if peak == 0.0:
            return samples.copy()
        limit = self.fraction * peak
        return np.clip(samples, -limit, limit)


class Compose(Transform):
    """Apply several transforms in sequence as one unit."""

    def __init__(self, transforms: list[Transform]):
        if not transforms:
            raise ValueError("Compose needs at least one transform")
        self.transforms = list(transforms)
        self.name = "+".join(t.name for t in self.transforms)
        parts = [t.spec for t in self.transforms]
        self.spec = "+".join(parts) if all(parts) else None

    def apply_samples(self, samples: np.ndarray, sample_rate: int) -> np.ndarray:
        for transform in self.transforms:
            samples = transform.apply_samples(samples, sample_rate)
        return samples


#: Transform spec keywords accepted by :func:`parse_transform`, mapping
#: keyword -> (factory, argument parser).
TRANSFORM_SPECS: dict = {
    "quantize": (BitDepthQuantize, int),
    "resample": (DownUpsample, int),
    "lowpass": (LowPassFilter, float),
    "median": (MedianFilter, int),
    "noise": (NoiseFlood, float),
    "clip": (AmplitudeClip, float),
}


def parse_transform(spec: str) -> Transform:
    """Build one transform from a compact spec like ``"quantize:8"``.

    The part before the colon selects the transform kind (see
    :data:`TRANSFORM_SPECS`); the optional part after it is the primary
    parameter.  ``"lowpass"`` alone uses the default cutoff.  Chains are
    composed with ``+``: ``"quantize:8+lowpass:3000"``.
    """
    spec = spec.strip()
    if "+" in spec:
        return Compose([parse_transform(part) for part in spec.split("+")])
    kind, _, argument = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in TRANSFORM_SPECS:
        raise UnknownComponentError("transform", kind, TRANSFORM_SPECS)
    factory, parse_arg = TRANSFORM_SPECS[kind]
    if not argument:
        return factory()
    try:
        return factory(parse_arg(argument))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad transform spec {spec!r}: {exc}") from exc


def parse_transforms(specs: str) -> list[Transform]:
    """Parse a comma-separated list of transform specs."""
    parts = [part for part in (p.strip() for p in specs.split(",")) if part]
    if not parts:
        raise ValueError("no transform specs given")
    return [parse_transform(part) for part in parts]


def default_transform_suite() -> list[Transform]:
    """The standard transformation ensemble.

    Five heterogeneous views of the input: coarse amplitude grid, coarse
    time grid, spectral truncation, temporal smoothing and noise
    flooding.  Heterogeneity matters for the same reason ASR diversity
    does in the paper — an AE that survives one transform rarely
    survives the others.
    """
    return [
        BitDepthQuantize(8),
        DownUpsample(2),
        LowPassFilter(3000.0),
        MedianFilter(5),
        NoiseFlood(20.0),
    ]
