"""Combined similarity scorers (Table III of the paper).

A :class:`SimilarityScorer` turns a pair of transcriptions into a score in
``[0, 1]``.  Six combinations are evaluated by the paper: {Cosine, Jaccard,
JaroWinkler} × {raw text, phonetic encoding}.  ``PE_JaroWinkler`` — phonetic
encoding followed by Jaro-Winkler — achieves the best accuracy and is the
library default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import UnknownComponentError
from repro.similarity.phonetic import phonetic_encode
from repro.similarity.string_metrics import (
    cosine_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_ratio,
)
from repro.text.normalize import normalize_text

_BASE_METRICS: dict[str, Callable[[str, str], float]] = {
    "Cosine": cosine_similarity,
    "Jaccard": jaccard_similarity,
    "JaroWinkler": jaro_winkler_similarity,
    "Levenshtein": levenshtein_ratio,
}


@dataclass(frozen=True)
class SimilarityScorer:
    """A (phonetic-encoding?, string-metric) combination."""

    name: str
    metric_name: str
    use_phonetic_encoding: bool

    @property
    def cache_tag(self) -> str:
        """Configuration tag keying this scorer's entries in a
        :class:`~repro.similarity.score_cache.PairScoreCache`.

        Includes the metric and the phonetic flag, not just the display
        name, so two scorers can only share cache entries when they are
        behaviourally identical.
        """
        return (f"{self.name}|{self.metric_name}"
                f"|pe={int(self.use_phonetic_encoding)}")

    def score(self, text_a: str, text_b: str) -> float:
        """Similarity of two transcriptions, in ``[0, 1]``."""
        metric = _BASE_METRICS[self.metric_name]
        a = normalize_text(text_a)
        b = normalize_text(text_b)
        if self.use_phonetic_encoding:
            a = phonetic_encode(a)
            b = phonetic_encode(b)
        value = metric(a, b)
        return float(min(1.0, max(0.0, value)))

    def __call__(self, text_a: str, text_b: str) -> float:
        return self.score(text_a, text_b)


def _build_methods() -> dict[str, SimilarityScorer]:
    methods: dict[str, SimilarityScorer] = {}
    for metric_name in ("Cosine", "Jaccard", "JaroWinkler"):
        methods[metric_name] = SimilarityScorer(metric_name, metric_name, False)
        methods[f"PE_{metric_name}"] = SimilarityScorer(
            f"PE_{metric_name}", metric_name, True)
    # Extra combinations available for ablations (not part of Table III).
    methods["Levenshtein"] = SimilarityScorer("Levenshtein", "Levenshtein", False)
    methods["PE_Levenshtein"] = SimilarityScorer("PE_Levenshtein", "Levenshtein", True)
    return methods


_METHODS = _build_methods()

#: The six similarity calculation methods compared in Table III.
SIMILARITY_METHODS: tuple[str, ...] = (
    "Cosine", "Jaccard", "JaroWinkler",
    "PE_Cosine", "PE_Jaccard", "PE_JaroWinkler",
)

#: The method the paper (and this library) adopts by default.
DEFAULT_METHOD = "PE_JaroWinkler"


def available_method_names() -> tuple[str, ...]:
    """Sorted names of every registered similarity method."""
    return tuple(sorted(_METHODS))


def get_scorer(name: str = DEFAULT_METHOD) -> SimilarityScorer:
    """Return the scorer registered under ``name``."""
    try:
        return _METHODS[name]
    except KeyError:
        raise UnknownComponentError("similarity method", name,
                                    available_method_names()) from None
