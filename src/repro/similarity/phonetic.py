"""Phonetic encodings.

The paper converts each transcription to a phonetic encoding before
measuring similarity, so that different ASRs outputting different words
with similar pronunciations ("there" / "their") still score as similar.
Two classic algorithms are provided: Soundex and a simplified Metaphone.
The default encoder used by the scorers is Metaphone, which preserves more
phonetic detail than Soundex.
"""

from __future__ import annotations

from repro.text.normalize import tokenize

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}

_VOWELS = set("aeiou")


def soundex(word: str) -> str:
    """Four-character Soundex code of a single word."""
    word = "".join(c for c in word.lower() if c.isalpha())
    if not word:
        return ""
    first = word[0].upper()
    encoded = []
    previous = _SOUNDEX_CODES.get(word[0], "")
    for letter in word[1:]:
        code = _SOUNDEX_CODES.get(letter, "")
        if code and code != previous:
            encoded.append(code)
        if letter not in "hw":
            previous = code
    return (first + "".join(encoded) + "000")[:4]


def metaphone(word: str) -> str:
    """Simplified Metaphone code of a single word.

    This implementation covers the common English transformation rules
    (silent letters, digraphs such as PH/TH/SH/CH, soft C/G, X → KS, ...).
    It is intentionally compact: the goal is a stable pronunciation-oriented
    key, not full linguistic fidelity.
    """
    word = "".join(c for c in word.lower() if c.isalpha())
    if not word:
        return ""

    # Initial-letter exceptions.
    if word.startswith(("kn", "gn", "pn", "ae", "wr")):
        word = word[1:]
    elif word.startswith("x"):
        word = "s" + word[1:]
    elif word.startswith("wh"):
        word = "w" + word[2:]

    result: list[str] = []
    i = 0
    length = len(word)
    while i < length:
        letter = word[i]
        nxt = word[i + 1] if i + 1 < length else ""
        prev = word[i - 1] if i > 0 else ""

        # Skip duplicate adjacent letters (except C).
        if letter == prev and letter != "c":
            i += 1
            continue

        if letter in _VOWELS:
            if i == 0:
                result.append(letter.upper())
        elif letter == "b":
            if not (i == length - 1 and prev == "m"):
                result.append("B")
        elif letter == "c":
            if nxt == "h":
                result.append("X")
                i += 1
            elif nxt in {"i", "e", "y"}:
                result.append("S")
            else:
                result.append("K")
        elif letter == "d":
            if nxt == "g" and i + 2 < length and word[i + 2] in {"e", "i", "y"}:
                result.append("J")
                i += 1
            else:
                result.append("T")
        elif letter == "g":
            if nxt == "h":
                if prev not in _VOWELS:
                    result.append("K")  # word-initial/cluster GH as in "ghost"
                i += 1  # silent after a vowel, as in "night" / "weigh"
            elif nxt in {"i", "e", "y"}:
                result.append("J")
            elif nxt == "n":
                pass  # silent as in "sign"
            else:
                result.append("K")
        elif letter == "h":
            if prev in _VOWELS and nxt not in _VOWELS:
                pass  # silent
            elif prev in {"c", "s", "p", "t", "g"}:
                pass  # handled by digraphs
            else:
                result.append("H")
        elif letter == "k":
            if prev != "c":
                result.append("K")
        elif letter == "p":
            if nxt == "h":
                result.append("F")
                i += 1
            else:
                result.append("P")
        elif letter == "q":
            result.append("K")
        elif letter == "s":
            if nxt == "h":
                result.append("X")
                i += 1
            elif nxt == "i" and i + 2 < length and word[i + 2] in {"o", "a"}:
                result.append("X")
            else:
                result.append("S")
        elif letter == "t":
            if nxt == "h":
                result.append("0")
                i += 1
            elif nxt == "i" and i + 2 < length and word[i + 2] in {"o", "a"}:
                result.append("X")
            else:
                result.append("T")
        elif letter == "v":
            result.append("F")
        elif letter == "w":
            if nxt in _VOWELS:
                result.append("W")
        elif letter == "x":
            result.append("KS")
        elif letter == "y":
            if nxt in _VOWELS:
                result.append("Y")
        elif letter == "z":
            result.append("S")
        elif letter in {"f", "j", "l", "m", "n", "r"}:
            result.append(letter.upper())
        i += 1
    return "".join(result)


def phonetic_encode(text: str, algorithm: str = "metaphone") -> str:
    """Encode every word of ``text`` phonetically and join with spaces."""
    if algorithm == "metaphone":
        encoder = metaphone
    elif algorithm == "soundex":
        encoder = soundex
    else:
        raise ValueError(f"unknown phonetic algorithm {algorithm!r}")
    return " ".join(encoder(word) for word in tokenize(text))
