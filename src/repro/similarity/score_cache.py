"""Content-addressed caching of pair similarity scores.

Scoring a transcription pair is pure — the score is a function of the two
texts and the scorer configuration alone — yet the same pairs are scored
again and again: overlapping streaming windows re-hear the same audio,
transform-ensemble auxiliaries often agree verbatim with the target, and
every Table III system shares auxiliary columns with the others.  The
transcription layer already caches by audio content hash
(:class:`~repro.pipeline.cache.TranscriptionCache`); this module gives
the scoring layer the same treatment.

The cache key is the scorer's configuration tag (name, metric, phonetic
flag — see :attr:`~repro.similarity.scorer.SimilarityScorer.cache_tag`)
plus a content hash of each text, so two calls scoring identical strings
share one entry regardless of where the strings came from.  Storage is a
thread-safe in-memory LRU, optionally backed by a disk store, mirroring
:class:`~repro.pipeline.cache.TranscriptionCache`'s API and statistics —
including the two disk formats: a ``.json`` snapshot written atomically
on :meth:`save`, or a ``.jsonl`` append-only journal (write-through
puts, :meth:`refresh` merges other processes' entries) shared across
the serving layer's worker processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass


def text_fingerprint(text: str) -> str:
    """Content hash identifying one transcription text."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


@dataclass
class ScoreCacheStats:
    """Hit/miss/eviction counters of one :class:`PairScoreCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PairScoreCache:
    """Thread-safe LRU cache of pair scores keyed by scorer + text content.

    Args:
        capacity: maximum number of entries kept in memory; the least
            recently used entry is evicted first.
        path: optional on-disk store — a ``.json`` snapshot file
            (written by an explicit :meth:`save`) or a ``.jsonl``
            append-only journal shared across processes (write-through
            puts).  Existing entries are loaded eagerly.
    """

    def __init__(self, capacity: int = 65536, path: str | None = None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.path = path
        self.stats = ScoreCacheStats()
        self._entries: OrderedDict[str, float] = OrderedDict()
        self._lock = threading.Lock()
        self._journal = None
        if path is not None and _is_journal_path(path):
            from repro.store import Journal
            self._journal = Journal(path)
            self.refresh()
        elif path is not None and os.path.exists(path):
            self.load(path)

    @staticmethod
    def key_for(scorer_tag: str, text_a: str, text_b: str) -> str:
        """Cache key of one (scorer, text pair) combination.

        ``scorer_tag`` is a scorer configuration tag (see
        :attr:`~repro.similarity.scorer.SimilarityScorer.cache_tag`);
        the texts are hashed individually, so the key is direction-aware
        (``(a, b)`` and ``(b, a)`` are distinct entries — every metric in
        the library is symmetric, but the cache does not assume it).
        """
        return (f"{scorer_tag}:{text_fingerprint(text_a)}"
                f":{text_fingerprint(text_b)}")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> float | None:
        """Look up ``key``, updating LRU order and hit/miss statistics."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, score: float) -> None:
        """Store ``score`` under ``key``, evicting the LRU entry if full.

        In journal mode the entry is also appended to the on-disk
        journal immediately (write-through).
        """
        with self._lock:
            self._entries[key] = float(score)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        if self._journal is not None:
            self._journal.append({"k": key, "v": float(score)})

    def refresh(self) -> int:
        """Merge journal entries other processes appended; returns count.

        Only meaningful in journal mode (``.jsonl`` path); a no-op that
        returns 0 otherwise.  Merged entries do not touch the hit/miss
        statistics.
        """
        if self._journal is None:
            return 0
        records = self._journal.replay()
        merged = 0
        with self._lock:
            for record in records:
                try:
                    value = float(record["v"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._entries[record["k"]] = value
                self._entries.move_to_end(record["k"])
                merged += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return merged

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = ScoreCacheStats()

    # ------------------------------------------------------------ disk store
    def save(self, path: str | None = None) -> str:
        """Write the cache to ``path`` (default: the constructor path).

        Snapshot paths are written atomically (temp file +
        ``os.replace``); saving to the cache's own journal path
        compacts the journal (single-writer, see
        :meth:`repro.store.Journal.rewrite`).
        """
        from repro.store import Journal, atomic_write_text

        path = path or self.path
        if path is None:
            raise ValueError("no path given and cache has no backing file")
        with self._lock:
            payload = dict(self._entries)
        if _is_journal_path(path):
            journal = (self._journal
                       if self._journal is not None and path == self.path
                       else Journal(path))
            journal.rewrite({"k": key, "v": value}
                            for key, value in payload.items())
        else:
            atomic_write_text(path, json.dumps(payload))
        return path

    def load(self, path: str | None = None) -> int:
        """Merge entries from ``path`` into the cache; returns the count."""
        path = path or self.path
        if path is None:
            raise ValueError("no path given and cache has no backing file")
        if _is_journal_path(path):
            from repro.store import Journal
            payload = {record["k"]: record["v"]
                       for record in Journal(path).replay()
                       if "k" in record and "v" in record}
        else:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        with self._lock:
            for key, value in payload.items():
                self._entries[key] = float(value)
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return len(payload)


def _is_journal_path(path: str) -> bool:
    """Whether a cache path selects the append-only journal format."""
    return os.fspath(path).endswith(".jsonl")
