"""The batch-first similarity scoring engine.

The paper's detection cost is recognition plus one similarity score per
auxiliary (Section V's overhead study).  PR 1 gave recognition a
batch-first execution layer (worker-pool fan-out + content-hash cache);
this module gives the scoring stage the same treatment:

* :class:`ScoringBackend` — the pluggable kernel layer.  ``"reference"``
  wraps the original scalar :meth:`SimilarityScorer.score` path
  unchanged; ``"fast"`` splits scoring into an *encode* phase (normalise
  + optional phonetic encoding, run once per distinct text) and a
  *metric* phase over the fast kernels in
  :mod:`repro.similarity.kernels`.  Both produce bit-identical score
  vectors — pinned by property tests — so the fast backend is the
  default everywhere.
* :class:`SimilarityEngine` — batch APIs (:meth:`score_pairs`,
  :meth:`score_texts`, :meth:`score_suites`) in front of a backend, with
  pair scores memoised in a
  :class:`~repro.similarity.score_cache.PairScoreCache` (shared
  process-wide by default, mirroring the transcription cache).

Every scoring call site in the library — detector, batched pipeline,
streaming windows, micro-batched serving, transform ensembles, the
related-work baselines, the experiment tables — routes through an engine,
so overlapping streaming windows and verbatim-agreeing ensemble members
stop recomputing identical pairs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import UnknownComponentError
from repro.similarity.kernels import (
    cosine_from_counts,
    jaccard_from_sets,
    jaro_winkler_similarity_fast,
    levenshtein_ratio_fast,
    token_counts,
)
from repro.similarity.phonetic import phonetic_encode
from repro.similarity.score_cache import (
    PairScoreCache,
    ScoreCacheStats,
    text_fingerprint,
)
from repro.similarity.scorer import SimilarityScorer, get_scorer
from repro.text.normalize import normalize_text, tokenize

#: Environment variable naming an on-disk JSON store for the shared cache.
SCORE_CACHE_ENV = "REPRO_SCORE_CACHE"

#: The backend used when none is requested.
DEFAULT_SCORING_BACKEND = "fast"

#: Metrics whose kernels consume token statistics rather than characters.
_TOKEN_METRICS = frozenset({"Cosine", "Jaccard"})


# ------------------------------------------------------------------ backends
@runtime_checkable
class ScoringBackend(Protocol):
    """A similarity kernel implementation.

    A backend turns ``(scorer, text pairs)`` into a float64 score array.
    Implementations must be stateless across calls (engines may share one
    instance between threads).

    Cache namespacing: pair scores are cached under the backend's
    ``cache_namespace``.  The built-in backends set it to ``""`` — the
    shared parity namespace — because they return values bit-identical
    to the reference scalar path ``scorer.score(a, b)`` for every
    registered scorer, so their entries are interchangeable.  A custom
    backend without the attribute is namespaced by its ``name``, so an
    approximate backend can never poison the shared cache; set
    ``cache_namespace = ""`` only if your backend upholds the
    bit-identity contract.
    """

    name: str

    def score_pairs(self, scorer: SimilarityScorer,
                    pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Scores of ``pairs`` under ``scorer``, shape ``(len(pairs),)``."""
        ...


class ReferenceScoringBackend:
    """The original scalar path: one ``scorer.score`` call per pair.

    Kept as the ground truth the fast backend is pinned against, and as
    the baseline of the similarity benchmark (``repro bench-similarity``).
    """

    name = "reference"
    cache_namespace = ""        # ground truth of the parity namespace

    def score_pairs(self, scorer: SimilarityScorer,
                    pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        return np.array([scorer.score(text_a, text_b)
                         for text_a, text_b in pairs], dtype=np.float64)


@dataclass(frozen=True)
class _EncodedText:
    """One text after the encode phase, ready for the metric kernels.

    ``chars`` is exactly the string the reference metric would see
    (normalised, optionally phonetic-encoded); the token fields are
    derived from it with the same ``tokenize`` the reference token
    metrics call internally, so kernel inputs are identical by
    construction.
    """

    chars: str
    counts: dict[str, int] | None = None
    norm: float = 0.0
    token_set: frozenset[str] | None = None


class FastScoringBackend:
    """Encode-once scoring over the fast kernels.

    Within one :meth:`score_pairs` call every distinct text is encoded
    exactly once (the reference path re-normalises and re-phonetic-encodes
    the target transcription once per auxiliary) and every distinct pair
    is scored exactly once.  The metric kernels are the early-exit /
    banded / pruned implementations in :mod:`repro.similarity.kernels`,
    each pinned bit-identical to its reference metric.
    """

    name = "fast"
    cache_namespace = ""        # bit-identical to reference (pinned by tests)

    def score_pairs(self, scorer: SimilarityScorer,
                    pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        kernel = self._kernel_for(scorer.metric_name)
        if kernel is None:
            # Unknown metric (a user-registered scorer): fall back to the
            # scalar path rather than guess at kernel semantics.
            return ReferenceScoringBackend().score_pairs(scorer, pairs)
        encoded: dict[str, _EncodedText] = {}
        memo: dict[tuple[str, str], float] = {}
        out = np.empty(len(pairs), dtype=np.float64)
        for index, (text_a, text_b) in enumerate(pairs):
            value = memo.get((text_a, text_b))
            if value is None:
                enc_a = encoded.get(text_a)
                if enc_a is None:
                    enc_a = encoded[text_a] = self._encode(scorer, text_a)
                enc_b = encoded.get(text_b)
                if enc_b is None:
                    enc_b = encoded[text_b] = self._encode(scorer, text_b)
                # The same clamp the reference scorer applies.
                value = float(min(1.0, max(0.0, kernel(enc_a, enc_b))))
                memo[(text_a, text_b)] = value
            out[index] = value
        return out

    # ------------------------------------------------------------- internals
    @staticmethod
    def _encode(scorer: SimilarityScorer, text: str) -> _EncodedText:
        chars = normalize_text(text)
        if scorer.use_phonetic_encoding:
            chars = phonetic_encode(chars)
        if scorer.metric_name not in _TOKEN_METRICS:
            return _EncodedText(chars=chars)
        tokens = tokenize(chars)
        counts, norm = token_counts(tokens)
        return _EncodedText(chars=chars, counts=counts, norm=norm,
                            token_set=frozenset(counts))

    @staticmethod
    def _kernel_for(metric_name: str) -> Callable | None:
        return _FAST_KERNELS.get(metric_name)


def _cosine_kernel(a: _EncodedText, b: _EncodedText) -> float:
    return cosine_from_counts(a.counts, a.norm, b.counts, b.norm)


def _jaccard_kernel(a: _EncodedText, b: _EncodedText) -> float:
    return jaccard_from_sets(a.token_set, b.token_set)


def _jaro_winkler_kernel(a: _EncodedText, b: _EncodedText) -> float:
    return jaro_winkler_similarity_fast(a.chars, b.chars)


def _levenshtein_kernel(a: _EncodedText, b: _EncodedText) -> float:
    return levenshtein_ratio_fast(a.chars, b.chars)


_FAST_KERNELS: dict[str, Callable] = {
    "Cosine": _cosine_kernel,
    "Jaccard": _jaccard_kernel,
    "JaroWinkler": _jaro_winkler_kernel,
    "Levenshtein": _levenshtein_kernel,
}


# ------------------------------------------------------------------ registry
_BACKEND_FACTORIES: dict[str, Callable[[], ScoringBackend]] = {
    "reference": ReferenceScoringBackend,
    "fast": FastScoringBackend,
}


def register_scoring_backend(name: str,
                             factory: Callable[[], ScoringBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites allowed)."""
    _BACKEND_FACTORIES[name] = factory
    _backend_instance.cache_clear()


def scoring_backend_names() -> tuple[str, ...]:
    """Names of every registered scoring backend."""
    return tuple(sorted(_BACKEND_FACTORIES))


@lru_cache(maxsize=None)
def _backend_instance(name: str) -> ScoringBackend:
    return _BACKEND_FACTORIES[name]()


def get_scoring_backend(name: str = DEFAULT_SCORING_BACKEND) -> ScoringBackend:
    """Return the (shared, stateless) backend registered under ``name``."""
    try:
        return _backend_instance(name)
    except KeyError:
        raise UnknownComponentError("scoring backend", name,
                                    scoring_backend_names()) from None


# ------------------------------------------------------------- shared cache
@lru_cache(maxsize=1)
def get_shared_score_cache() -> PairScoreCache:
    """The process-wide pair-score cache shared by default engines.

    One content-hash store across every engine means the streaming
    detector, the micro-batcher and any ad-hoc scoring all reuse each
    other's pair scores.  Set ``REPRO_SCORE_CACHE`` to a file path to
    persist the shared cache across processes (call
    :meth:`SimilarityEngine.save_cache` to write it out).
    """
    return PairScoreCache(capacity=65536,
                          path=os.environ.get(SCORE_CACHE_ENV))


def resolve_score_cache(spec) -> PairScoreCache | bool:
    """Coerce a cache spec into a :class:`SimilarityEngine` cache argument.

    The policy surface (``"shared"``/``"private"``/``"off"``/JSON path,
    a bool, or a :class:`PairScoreCache` instance) is shared with
    :func:`repro.pipeline.engine.resolve_transcription_cache` — see
    :func:`repro.caching.resolve_cache_policy`.  This is what the CLI's
    ``--score-cache`` flag and :class:`~repro.specs.ScoringSpec`'s
    ``cache`` field feed through.
    """
    from repro.caching import resolve_cache_policy
    return resolve_cache_policy(spec, PairScoreCache, "score-cache policy")


# -------------------------------------------------------------------- engine
@dataclass(frozen=True)
class ScoreBatchReport:
    """Cache accounting for one engine batch call (thread-local counts)."""

    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of pair lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.cache_hits / self.lookups


class SimilarityEngine:
    """Batch similarity scoring through a backend and a pair-score cache.

    Args:
        scorer: a :class:`SimilarityScorer`, a registry name, or ``None``
            for the paper's default (``PE_JaroWinkler``).
        backend: a :class:`ScoringBackend`, a registry name
            (``"fast"``/``"reference"``), or ``None`` for the default
            fast backend.
        cache: ``True`` (default) shares the process-wide cache from
            :func:`get_shared_score_cache`; ``False``/``None`` disables
            caching; a :class:`PairScoreCache` instance is used as given.
        cache_path: convenience — when given (and ``cache`` is ``True``)
            a private on-disk cache at this path is used instead of the
            shared one.
    """

    def __init__(self, scorer: SimilarityScorer | str | None = None,
                 backend: ScoringBackend | str | None = None,
                 cache: PairScoreCache | bool | None = True,
                 cache_path: str | None = None):
        if scorer is None:
            scorer = get_scorer()
        elif isinstance(scorer, str):
            scorer = get_scorer(scorer)
        self.scorer = scorer
        if backend is None:
            backend = get_scoring_backend()
        elif isinstance(backend, str):
            backend = get_scoring_backend(backend)
        self.backend = backend
        if isinstance(cache, PairScoreCache):
            self.cache: PairScoreCache | None = cache
        elif cache:
            self.cache = (PairScoreCache(path=cache_path)
                          if cache_path is not None
                          else get_shared_score_cache())
        else:
            self.cache = None

    # -------------------------------------------------------------- plumbing
    @property
    def stats(self) -> ScoreCacheStats:
        """Hit/miss statistics of the engine's cache (zeros if disabled)."""
        return self.cache.stats if self.cache is not None else ScoreCacheStats()

    def save_cache(self, path: str | None = None) -> str:
        """Persist the cache to disk (see :meth:`PairScoreCache.save`)."""
        if self.cache is None:
            raise RuntimeError("engine has no cache to save")
        return self.cache.save(path)

    # --------------------------------------------------------------- scoring
    def score_pair(self, text_a: str, text_b: str) -> float:
        """Similarity of one transcription pair, in ``[0, 1]``."""
        return float(self.score_pairs([(text_a, text_b)])[0])

    def score_pairs(self, pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Scores of a batch of text pairs, shape ``(len(pairs),)``."""
        return self.score_pairs_report(pairs)[0]

    def score_pairs_report(
            self, pairs: Sequence[tuple[str, str]],
    ) -> tuple[np.ndarray, ScoreBatchReport]:
        """Like :meth:`score_pairs`, plus this call's cache accounting.

        The report counts are accumulated locally during the call, so
        they stay correct when several threads share one engine (the
        cache's own global counters interleave under concurrency).
        """
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64), ScoreBatchReport()
        if self.cache is None:
            values = self.backend.score_pairs(self.scorer, pairs)
            return (np.asarray(values, dtype=np.float64),
                    ScoreBatchReport(cache_misses=len(pairs)))
        tag = self._cache_tag
        out = np.empty(len(pairs), dtype=np.float64)
        # Fingerprints are memoised per distinct text (a suite batch hashes
        # each target text once, not once per auxiliary), and missed pairs
        # are deduplicated before reaching the backend; the key format is
        # PairScoreCache.key_for's.
        fingerprints: dict[str, str] = {}
        pending: dict[str, list[int]] = {}
        miss_pairs: list[tuple[str, str]] = []
        hits = 0
        misses = 0
        for index, (text_a, text_b) in enumerate(pairs):
            fp_a = fingerprints.get(text_a)
            if fp_a is None:
                fp_a = fingerprints[text_a] = text_fingerprint(text_a)
            fp_b = fingerprints.get(text_b)
            if fp_b is None:
                fp_b = fingerprints[text_b] = text_fingerprint(text_b)
            key = f"{tag}:{fp_a}:{fp_b}"
            value = self.cache.get(key)
            if value is None:
                misses += 1
                indices = pending.get(key)
                if indices is None:
                    pending[key] = [index]
                    miss_pairs.append((text_a, text_b))
                else:
                    indices.append(index)
            else:
                out[index] = value
                hits += 1
        if miss_pairs:
            values = self.backend.score_pairs(self.scorer, miss_pairs)
            for (key, indices), value in zip(pending.items(), values):
                out[indices] = value
                self.cache.put(key, float(value))
        return out, ScoreBatchReport(cache_hits=hits, cache_misses=misses)

    @property
    def _cache_tag(self) -> str:
        """The scorer tag, namespaced by non-parity backends.

        Backends that do not declare ``cache_namespace`` are isolated
        under their own name, so an approximate custom backend cannot
        poison entries the bit-identical backends share.
        """
        namespace = getattr(self.backend, "cache_namespace", self.backend.name)
        if not namespace:
            return self.scorer.cache_tag
        return f"{namespace}|{self.scorer.cache_tag}"

    def score_texts(self, target_text: str,
                    auxiliary_texts: Sequence[str]) -> np.ndarray:
        """Feature vector: target text against each auxiliary text."""
        return self.score_pairs([(target_text, text)
                                 for text in auxiliary_texts])

    def score_suites(self, suites, auxiliary_asrs) -> np.ndarray:
        """Feature matrix for a batch of suite transcriptions.

        Args:
            suites: :class:`~repro.pipeline.engine.SuiteTranscription`
                objects (anything with ``.target.text`` and an
                ``.auxiliaries`` mapping of short name → transcription).
            auxiliary_asrs: auxiliary ASRs fixing the column order.

        Returns:
            Array of shape ``(len(suites), len(auxiliary_asrs))``,
            dtype float64.
        """
        return self.score_suites_report(suites, auxiliary_asrs)[0]

    def score_suites_report(
            self, suites, auxiliary_asrs,
    ) -> tuple[np.ndarray, ScoreBatchReport]:
        """Like :meth:`score_suites`, plus this call's cache accounting."""
        suites = list(suites)
        n_aux = len(auxiliary_asrs)
        if not suites:
            return (np.empty((0, n_aux), dtype=np.float64),
                    ScoreBatchReport())
        names = [asr.short_name for asr in auxiliary_asrs]
        pairs = [(suite.target.text, suite.auxiliaries[name].text)
                 for suite in suites for name in names]
        flat, report = self.score_pairs_report(pairs)
        return flat.reshape(len(suites), n_aux), report


def default_engine(scorer: SimilarityScorer | str | None = None) -> SimilarityEngine:
    """An engine with the default backend and the shared pair-score cache.

    Engines are cheap value-like objects (the backend instance and the
    shared cache are process-wide singletons), so call sites that are not
    handed an explicit engine construct one on the fly.
    """
    return SimilarityEngine(scorer=scorer)
