"""String similarity measures.

All measures return a score in ``[0, 1]`` where 1 means identical.  The
paper compares Jaccard, cosine and Jaro-Winkler (an edit-distance family
measure); Levenshtein ratio is included for completeness and the ablation
experiments.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.text.metrics import edit_distance
from repro.text.normalize import tokenize


def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard index over the word sets of the two strings."""
    set_a, set_b = set(tokenize(a)), set(tokenize(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def cosine_similarity(a: str, b: str) -> float:
    """Cosine similarity over word-count vectors."""
    counts_a, counts_b = Counter(tokenize(a)), Counter(tokenize(b))
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[w] * counts_b[w] for w in counts_a.keys() & counts_b.keys())
    norm_a = math.sqrt(sum(v * v for v in counts_a.values()))
    norm_b = math.sqrt(sum(v * v for v in counts_b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between two strings (character level)."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b

    matches = 0
    for i, char in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_b)
        for j in range(start, end):
            if matched_b[j] or b[j] != char:
                continue
            matched_a[i] = True
            matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_a):
        if not matched_a[i]:
            continue
        while not matched_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (matches / len_a + matches / len_b
            + (matches - transpositions) / matches) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1,
                            max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity (Jaro with a common-prefix bonus).

    This is the measure the paper selects (combined with phonetic encoding)
    because it yields the highest detection accuracy.
    """
    if not 0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:max_prefix], b[:max_prefix]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def levenshtein_ratio(a: str, b: str) -> float:
    """1 minus the normalised character edit distance."""
    if not a and not b:
        return 1.0
    distance = edit_distance(a, b)
    return 1.0 - distance / max(len(a), len(b))
