"""The similarity-scoring microbenchmark (``repro bench-similarity``).

Times the ``reference`` scalar backend against the ``fast`` encode-once
backend on a synthetic transcription corpus, over the two workload shapes
the library actually serves:

* **batch** — a batch of distinct transcription pairs scored once each
  (the :meth:`~repro.pipeline.detection.DetectionPipeline.detect_batch`
  shape).  Both backends run cache-less, so this isolates the kernel and
  encode-phase win.
* **stream** — every pair recurs ``overlap`` times, interleaved the way
  overlapping streaming windows re-hear the same audio (hop = window /
  overlap).  The fast engine runs with a warm
  :class:`~repro.similarity.score_cache.PairScoreCache`; the reference
  measurement is the scalar path the seed library ran, which recomputed
  every recurrence.

The report is machine-readable (written to ``BENCH_similarity.json`` by
the CLI, uploaded as a CI artifact) and self-checking: it records the
maximum absolute difference between the two backends' scores, which must
be exactly zero.
"""

from __future__ import annotations

import time

import numpy as np

from repro.similarity.engine import SimilarityEngine, get_scoring_backend
from repro.similarity.score_cache import PairScoreCache
from repro.similarity.scorer import DEFAULT_METHOD, get_scorer


def synthetic_transcription_pairs(n_pairs: int = 300,
                                  seed: int = 0) -> list[tuple[str, str]]:
    """Distinct (target, auxiliary) transcription-like text pairs.

    Base sentences come from the LibriSpeech-like corpus; the auxiliary
    side is perturbed the way a diverse ASR disagrees — verbatim
    agreement, dropped words, swapped word order, cross-sentence word
    substitutions and in-word character mangling, in proportions chosen
    so the pair population spans the easy early-exit cases and the hard
    full-DP cases alike.
    """
    from repro.text.corpus import librispeech_like_corpus

    rng = np.random.default_rng(seed)
    sentences = librispeech_like_corpus().sample(max(16, n_pairs // 4), rng)
    vocabulary = sorted({word for sentence in sentences
                         for word in sentence.split()})

    def perturb(sentence: str) -> str:
        words = sentence.split()
        kind = rng.integers(5)
        if kind == 0 or len(words) < 2:
            return sentence                       # verbatim agreement
        if kind == 1:
            del words[rng.integers(len(words))]   # dropped word
        elif kind == 2:
            i = int(rng.integers(len(words) - 1))
            words[i], words[i + 1] = words[i + 1], words[i]
        elif kind == 3:
            words[rng.integers(len(words))] = \
                vocabulary[rng.integers(len(vocabulary))]
        else:
            i = int(rng.integers(len(words)))
            word = list(words[i])
            word[rng.integers(len(word))] = "abcdefghijklmnopqrstuvwxyz"[
                rng.integers(26)]
            words[i] = "".join(word)
        return " ".join(words)

    pairs = []
    seen = set()
    while len(pairs) < n_pairs:
        target = sentences[int(rng.integers(len(sentences)))]
        pair = (target, perturb(target))
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return pairs


def _interleave_stream(pairs: list[tuple[str, str]],
                       overlap: int) -> list[tuple[str, str]]:
    """The streaming recurrence pattern: window ``i`` shares pairs with
    its ``overlap - 1`` neighbours, so each pair appears ``overlap``
    times, staggered rather than back-to-back."""
    stream = []
    for start in range(overlap):
        stream.extend(pairs[start::overlap] * overlap)
    return stream[:len(pairs) * overlap]


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_similarity_benchmark(n_pairs: int = 300, overlap: int = 4,
                             repeats: int = 3, seed: int = 0,
                             method: str = DEFAULT_METHOD) -> dict:
    """Time reference vs fast scoring; return a JSON-friendly report."""
    scorer = get_scorer(method)
    reference = get_scoring_backend("reference")
    fast = get_scoring_backend("fast")
    pairs = synthetic_transcription_pairs(n_pairs, seed)
    stream = _interleave_stream(pairs, overlap)

    # Parity first: the benchmark refuses to report a speedup for wrong
    # answers.
    reference_scores = reference.score_pairs(scorer, pairs)
    fast_scores = fast.score_pairs(scorer, pairs)
    parity = float(np.max(np.abs(reference_scores - fast_scores),
                          initial=0.0))

    batch_reference = _best_of(repeats,
                               lambda: reference.score_pairs(scorer, pairs))
    batch_fast = _best_of(repeats, lambda: fast.score_pairs(scorer, pairs))

    stream_reference = _best_of(repeats,
                                lambda: reference.score_pairs(scorer, stream))
    cache = PairScoreCache(capacity=max(65536, len(pairs) * 2))
    warm_engine = SimilarityEngine(scorer=scorer, backend=fast, cache=cache)
    warm_engine.score_pairs(pairs)          # warm the cache
    cache.stats.hits = cache.stats.misses = 0
    stream_fast = _best_of(repeats,
                           lambda: warm_engine.score_pairs(stream))

    def _shape(reference_seconds: float, fast_seconds: float,
               n_scored: int) -> dict:
        return {
            "reference_seconds": reference_seconds,
            "fast_seconds": fast_seconds,
            "speedup": (reference_seconds / fast_seconds
                        if fast_seconds > 0 else float("inf")),
            "reference_pairs_per_second": (n_scored / reference_seconds
                                           if reference_seconds > 0 else 0.0),
            "fast_pairs_per_second": (n_scored / fast_seconds
                                      if fast_seconds > 0 else 0.0),
        }

    return {
        "method": method,
        "n_pairs": len(pairs),
        "overlap": overlap,
        "repeats": repeats,
        "seed": seed,
        "parity_max_abs_diff": parity,
        "batch": _shape(batch_reference, batch_fast, len(pairs)),
        "stream": {
            **_shape(stream_reference, stream_fast, len(stream)),
            "cache_hit_rate": cache.stats.hit_rate,
        },
    }
