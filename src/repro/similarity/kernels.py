"""Fast similarity kernels, pinned bit-identical to the reference metrics.

The reference metrics in :mod:`repro.similarity.string_metrics` are
scalar pure-Python loops: Jaro scans an ``O(len × window)`` grid, the
edit distance fills the full DP matrix, and cosine/Jaccard rebuild
``Counter`` objects for both strings on every call.  The kernels here
compute the *same values* — every float is produced by the same final
arithmetic expression on the same integers, so results are bit-identical
(property-tested in ``tests/test_similarity_engine.py``) — but skip the
work the reference does redundantly:

* :func:`edit_distance_fast` — common prefix/suffix stripping, then a
  banded DP (Ukkonen band doubling) that only touches cells within the
  current distance bound; near-identical strings cost ``O(n)``.
* :func:`jaro_similarity_fast` — a per-character position index replaces
  the reference's window scan, so each character of ``a`` does one
  dictionary probe instead of up to ``window`` comparisons.  The greedy
  first-unmatched-in-window choice is preserved exactly.
* :func:`cosine_from_counts` / :func:`jaccard_from_sets` — operate on
  pre-computed token count dicts / token sets (built once per distinct
  text by the fast backend, not once per pair), with a numpy path for
  long token lists.  All intermediate sums are exact integers, so the
  final division matches the reference bit for bit.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

#: Token-set size above which the set/dict kernels switch to numpy.
#: Transcriptions rarely cross this; long documents do.
VECTORIZE_MIN_TOKENS = 64


# ------------------------------------------------------------ edit distance
def _banded_distance(a: str, b: str, band: int) -> int | None:
    """Edit distance restricted to ``|i - j| <= band``.

    Returns the exact distance when it is ``<= band``, else ``None``
    (the band was too narrow and must widen).
    """
    len_a, len_b = len(a), len(b)
    infinity = len_a + len_b + 1
    previous = [j if j <= band else infinity for j in range(len_b + 1)]
    for i in range(1, len_a + 1):
        lo = max(1, i - band)
        hi = min(len_b, i + band)
        current = [infinity] * (len_b + 1)
        if i <= band:
            current[0] = i
        char_a = a[i - 1]
        for j in range(lo, hi + 1):
            substitution = previous[j - 1] + (0 if char_a == b[j - 1] else 1)
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
        previous = current
    distance = previous[len_b]
    return distance if distance <= band else None


def edit_distance_fast(a: str, b: str) -> int:
    """Levenshtein distance, identical to
    :func:`repro.text.metrics.edit_distance` on strings.

    Early-exits on equality, strips the common prefix and suffix, then
    runs a banded DP whose band doubles until it covers the true
    distance — an optimal path with distance ``d`` never leaves the
    ``|i - j| <= d`` diagonal band, so the first band that contains the
    returned value is exact.
    """
    if a == b:
        return 0
    # Strip the common prefix and suffix: edits never touch them.
    start, limit = 0, min(len(a), len(b))
    while start < limit and a[start] == b[start]:
        start += 1
    end_a, end_b = len(a), len(b)
    while end_a > start and end_b > start and a[end_a - 1] == b[end_b - 1]:
        end_a -= 1
        end_b -= 1
    a, b = a[start:end_a], b[start:end_b]
    if len(a) > len(b):
        a, b = b, a
    if not a:
        return len(b)
    band = max(1, len(b) - len(a))
    while True:
        distance = _banded_distance(a, b, band)
        if distance is not None:
            return distance
        band *= 2


def levenshtein_ratio_fast(a: str, b: str) -> float:
    """``1 - distance / max(len)``, bit-identical to
    :func:`repro.similarity.string_metrics.levenshtein_ratio`."""
    if not a and not b:
        return 1.0
    return 1.0 - edit_distance_fast(a, b) / max(len(a), len(b))


# --------------------------------------------------------------------- Jaro
def jaro_similarity_fast(a: str, b: str) -> float:
    """Jaro similarity, bit-identical to
    :func:`repro.similarity.string_metrics.jaro_similarity`.

    Matching is greedy first-unmatched-position-in-window, exactly as
    the reference's inner scan; the position index just finds that
    position in ``O(1)`` amortised.  Discarding positions below the
    window start is safe because the start is non-decreasing in ``i``.
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(max(len_a, len_b) // 2 - 1, 0)

    positions: dict[str, deque[int]] = {}
    for j, char in enumerate(b):
        positions.setdefault(char, deque()).append(j)

    matched_a_chars: list[str] = []
    matched_b_positions: list[int] = []
    for i, char in enumerate(a):
        queue = positions.get(char)
        if not queue:
            continue
        start = i - window
        end = i + window + 1
        while queue and queue[0] < start:
            queue.popleft()
        if queue and queue[0] < end:
            matched_b_positions.append(queue.popleft())
            matched_a_chars.append(char)
    matches = len(matched_a_chars)
    if matches == 0:
        return 0.0

    # The reference counts transpositions by walking matched positions of
    # b in ascending order; replicate by sorting the matched positions.
    matched_b_chars = [b[j] for j in sorted(matched_b_positions)]
    transpositions = sum(char_a != char_b for char_a, char_b
                         in zip(matched_a_chars, matched_b_chars)) // 2
    return (matches / len_a + matches / len_b
            + (matches - transpositions) / matches) / 3.0


def jaro_winkler_similarity_fast(a: str, b: str, prefix_scale: float = 0.1,
                                 max_prefix: int = 4) -> float:
    """Jaro-Winkler via :func:`jaro_similarity_fast`; bit-identical to
    :func:`repro.similarity.string_metrics.jaro_winkler_similarity`."""
    if not 0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    jaro = jaro_similarity_fast(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:max_prefix], b[:max_prefix]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


# ------------------------------------------------------------- token metrics
def token_counts(tokens: list[str]) -> tuple[dict[str, int], float]:
    """Per-token counts and the Euclidean norm of the count vector.

    The norm is ``math.sqrt`` of an exact integer, matching the
    reference's ``math.sqrt(sum(v * v for v in counts.values()))``.
    """
    counts: dict[str, int] = {}
    for token in tokens:
        counts[token] = counts.get(token, 0) + 1
    norm_sq = 0
    for value in counts.values():
        norm_sq += value * value
    return counts, math.sqrt(norm_sq)


def cosine_from_counts(counts_a: dict[str, int], norm_a: float,
                       counts_b: dict[str, int], norm_b: float) -> float:
    """Cosine over pre-computed count dicts, bit-identical to
    :func:`repro.similarity.string_metrics.cosine_similarity`.

    The dot product is an exact integer whatever the iteration order, so
    the single final division reproduces the reference float exactly.
    """
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    if norm_a == 0 or norm_b == 0:
        return 0.0
    if min(len(counts_a), len(counts_b)) >= VECTORIZE_MIN_TOKENS:
        common = counts_a.keys() & counts_b.keys()
        if not common:
            return 0 / (norm_a * norm_b)
        dot = int(np.array([counts_a[w] for w in common], dtype=np.int64)
                  @ np.array([counts_b[w] for w in common], dtype=np.int64))
        return dot / (norm_a * norm_b)
    if len(counts_a) > len(counts_b):
        counts_a, counts_b = counts_b, counts_a
    dot = 0
    for token, count in counts_a.items():
        other = counts_b.get(token)
        if other is not None:
            dot += count * other
    return dot / (norm_a * norm_b)


def jaccard_from_sets(set_a: frozenset[str], set_b: frozenset[str]) -> float:
    """Jaccard over pre-computed token sets, bit-identical to
    :func:`repro.similarity.string_metrics.jaccard_similarity`.

    Intersection and union sizes are exact integers, so the single final
    division reproduces the reference float exactly.  (The win over the
    reference is that the sets are built once per distinct text by the
    backend, not once per pair.)
    """
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)
