"""Transcription similarity calculation.

Implements the similarity-calculation component of the MVP-EARS pipeline:
phonetic encodings (Soundex, Metaphone) and string similarity measures
(Jaccard, cosine, Jaro, Jaro-Winkler, Levenshtein ratio), plus the six
combined scorers compared in Table III of the paper.

Batch scoring lives in :mod:`repro.similarity.engine`: a pluggable
:class:`ScoringBackend` registry (the scalar ``"reference"`` path and the
encode-once ``"fast"`` path over the kernels in
:mod:`repro.similarity.kernels`, bit-identical by construction and by
test) behind a :class:`SimilarityEngine` whose pair scores are memoised
in a :class:`PairScoreCache` (see ``docs/SCORING.md``).
"""

from repro.similarity.phonetic import soundex, metaphone, phonetic_encode
from repro.similarity.string_metrics import (
    cosine_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_ratio,
)
from repro.similarity.scorer import (
    SIMILARITY_METHODS,
    SimilarityScorer,
    get_scorer,
)
from repro.similarity.score_cache import PairScoreCache, ScoreCacheStats
from repro.similarity.engine import (
    DEFAULT_SCORING_BACKEND,
    FastScoringBackend,
    ReferenceScoringBackend,
    ScoreBatchReport,
    ScoringBackend,
    SimilarityEngine,
    default_engine,
    get_scoring_backend,
    get_shared_score_cache,
    register_scoring_backend,
    resolve_score_cache,
    scoring_backend_names,
)

__all__ = [
    "soundex",
    "metaphone",
    "phonetic_encode",
    "cosine_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_ratio",
    "SIMILARITY_METHODS",
    "SimilarityScorer",
    "get_scorer",
    "PairScoreCache",
    "ScoreCacheStats",
    "DEFAULT_SCORING_BACKEND",
    "FastScoringBackend",
    "ReferenceScoringBackend",
    "ScoreBatchReport",
    "ScoringBackend",
    "SimilarityEngine",
    "default_engine",
    "get_scoring_backend",
    "get_shared_score_cache",
    "register_scoring_backend",
    "resolve_score_cache",
    "scoring_backend_names",
]
