"""Transcription similarity calculation.

Implements the similarity-calculation component of the MVP-EARS pipeline:
phonetic encodings (Soundex, Metaphone) and string similarity measures
(Jaccard, cosine, Jaro, Jaro-Winkler, Levenshtein ratio), plus the six
combined scorers compared in Table III of the paper.
"""

from repro.similarity.phonetic import soundex, metaphone, phonetic_encode
from repro.similarity.string_metrics import (
    cosine_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_ratio,
)
from repro.similarity.scorer import (
    SIMILARITY_METHODS,
    SimilarityScorer,
    get_scorer,
)

__all__ = [
    "soundex",
    "metaphone",
    "phonetic_encode",
    "cosine_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_ratio",
    "SIMILARITY_METHODS",
    "SimilarityScorer",
    "get_scorer",
]
